// Package fleet is the sharded serving layer: a router/coordinator that
// consistent-hashes jobs by their engine CacheKey across N mpdata-serve
// replicas. Cache affinity lifts the paper's shared-cache locality argument
// from cores to replicas: all jobs with one compiled-schedule key land on the
// same home replica, so a warm engine exists *somewhere* in the fleet rather
// than being recompiled everywhere. Saturated homes overflow to ring
// successors (work stealing), fleet-wide saturation surfaces as one honest
// aggregate 429, and replica faults — a replica dying or drain-aborting
// mid-job — reroute the affected jobs to surviving replicas and re-run them,
// so killing a replica under load loses nothing.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"islands/internal/serve"
	serveclient "islands/internal/serve/client"
)

// ErrNoReplicas rejects submissions when no healthy replica is reachable
// (HTTP 503 at the API).
var ErrNoReplicas = errors.New("fleet: no healthy replica reachable")

// ErrDraining rejects submissions while the router drains (HTTP 503).
var ErrDraining = errors.New("fleet: router is draining, not admitting jobs")

// BusyError is the aggregate backpressure rejection: every healthy replica
// refused the job with a 429. RetryAfter is the honest fleet-wide hint — the
// minimum of the replica hints, since the fleet can accept again as soon as
// the soonest replica can.
type BusyError struct {
	Replicas   int
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("fleet: all %d healthy replicas saturated, retry after %s", e.Replicas, e.RetryAfter)
}

// Options configures a Router. The zero value of every field selects the
// documented default.
type Options struct {
	// Replicas are the mpdata-serve base URLs ("http://host:port").
	Replicas []string
	// VNodes is the ring's virtual-node count per replica (0 = 64).
	VNodes int
	// HealthInterval is the membership probe period (0 = 250ms).
	HealthInterval time.Duration
	// FailThreshold is the consecutive probe/transport failures that take
	// a replica out of the placement ring (0 = 2).
	FailThreshold int
	// PollInterval is the per-job status poll period (0 = 50ms).
	PollInterval time.Duration
	// PollFailLimit is the consecutive status-poll failures that declare
	// the placement dead and reroute the job (0 = 3).
	PollFailLimit int
	// MaxReroutes bounds the replica-fault re-placements per job (0 = 3);
	// past it the job is reported failed — terminal, never lost.
	MaxReroutes int
	// Backoff is the admission retry policy used while re-placing rerouted
	// jobs into a saturated fleet (zero value = serveclient defaults).
	Backoff serveclient.BackoffPolicy
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 250 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.PollFailLimit <= 0 {
		o.PollFailLimit = 3
	}
	if o.MaxReroutes <= 0 {
		o.MaxReroutes = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Router is the fleet coordinator: health-checked membership, the consistent
// hash ring, the routed-job registry and the HTTP API. Create with NewRouter,
// serve Handler(), stop with Drain or Close.
type Router struct {
	opts    Options
	metrics *Metrics

	mu      sync.Mutex
	members map[string]*member
	ring    *ring // healthy members only
	jobs    map[string]*Job
	nextID  uint64

	inflight atomic.Int64
	draining atomic.Bool

	jobsWG   sync.WaitGroup
	healthWG sync.WaitGroup
	stop     chan struct{}

	closeOnce sync.Once
}

// NewRouter builds the coordinator and starts the membership health loop.
func NewRouter(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: at least one replica URL is required")
	}
	r := &Router{
		opts:    opts,
		metrics: &Metrics{},
		members: make(map[string]*member, len(opts.Replicas)),
		jobs:    make(map[string]*Job),
		stop:    make(chan struct{}),
	}
	for _, name := range opts.Replicas {
		name = strings.TrimRight(strings.TrimSpace(name), "/")
		if name == "" {
			continue
		}
		if _, dup := r.members[name]; dup {
			return nil, fmt.Errorf("fleet: duplicate replica %s", name)
		}
		r.members[name] = newMember(name)
	}
	if len(r.members) == 0 {
		return nil, fmt.Errorf("fleet: at least one replica URL is required")
	}
	r.rebuildRing()
	r.healthWG.Add(1)
	go r.healthLoop()
	return r, nil
}

// Metrics exposes the router's counters (tests assert on them directly).
func (r *Router) Metrics() *Metrics { return r.metrics }

// memberList snapshots the membership.
func (r *Router) memberList() []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	return out
}

// rebuildRing recomputes the placement ring over the healthy members.
func (r *Router) rebuildRing() {
	r.mu.Lock()
	defer r.mu.Unlock()
	var healthy []string
	for name, m := range r.members {
		if m.Healthy() {
			healthy = append(healthy, name)
		}
	}
	sort.Strings(healthy)
	r.ring = newRing(healthy, r.opts.VNodes)
}

// healthyCount returns (healthy, total) members.
func (r *Router) healthyCount() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.members {
		if m.Healthy() {
			n++
		}
	}
	return n, len(r.members)
}

// placementOrder resolves the key's ring successors to live members: the
// home replica first, then the work-stealing fallbacks.
func (r *Router) placementOrder(key uint64) []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := r.ring.successors(key, len(r.members))
	out := make([]*member, 0, len(names))
	for _, n := range names {
		if m := r.members[n]; m != nil {
			out = append(out, m)
		}
	}
	return out
}

// affinityKey hashes a normalized spec's engine CacheKey onto the ring. Jobs
// with identical compiled-schedule identities (grid, strategy, topology,
// blocking, ablation flags — everything serve.CacheKey holds) share a hash
// point and therefore a home replica, which is what keeps the fleet-wide
// engine-cache hit rate at the single-server level.
func affinityKey(ns serve.NormSpec) uint64 {
	return hashString(fmt.Sprintf("%v", ns.Key()))
}

// Submit validates a spec, admits it as a routed job and synchronously
// places it on a replica: the home replica by cache affinity, or a ring
// successor when the home queue is saturated (work stealing). It returns
// ErrDraining while the router drains, *BusyError when every healthy replica
// rejected the job with backpressure, ErrNoReplicas when none was reachable,
// or a validation error for a bad spec. On success a watcher goroutine
// follows the job to its terminal state, rerouting on replica faults.
func (r *Router) Submit(ctx context.Context, spec serve.Spec) (*Job, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if r.draining.Load() {
		return nil, ErrDraining
	}

	key := affinityKey(ns)
	r.mu.Lock()
	r.nextID++
	id := fmt.Sprintf("f%08d", r.nextID)
	j := newFleetJob(id, spec, key)
	j.home = r.ring.owner(key)
	r.jobs[id] = j
	r.mu.Unlock()

	m, st, err := r.placeOnce(ctx, j)
	if err != nil {
		r.mu.Lock()
		delete(r.jobs, id)
		r.mu.Unlock()
		if errors.As(err, new(*BusyError)) {
			r.metrics.Rejected.Add(1)
		}
		return nil, err
	}
	j.place(m.name, st.ID)
	r.metrics.Submitted.Add(1)
	r.inflight.Add(1)
	r.jobsWG.Add(1)
	go r.watch(j)
	return j, nil
}

// placeOnce walks the job's affinity order and submits to the first replica
// that accepts. Every-replica-429 aggregates into *BusyError carrying the
// minimum Retry-After hint; unreachable/draining replicas are skipped (and
// struck toward their fail threshold); no candidates at all is ErrNoReplicas.
func (r *Router) placeOnce(ctx context.Context, j *Job) (*member, serve.JobStatus, error) {
	order := r.placementOrder(j.key)
	if len(order) == 0 {
		return nil, serve.JobStatus{}, ErrNoReplicas
	}
	var (
		busy    int
		minHint time.Duration = -1
	)
	for i, m := range order {
		st, err := m.client.Submit(ctx, j.Spec)
		if err == nil {
			r.metrics.Placements.Add(1)
			if i > 0 {
				r.metrics.Steals.Add(1)
			}
			return m, st, nil
		}
		if ctx.Err() != nil {
			return nil, serve.JobStatus{}, ctx.Err()
		}
		var apiErr *serveclient.APIError
		switch {
		case errors.As(err, &apiErr) && apiErr.StatusCode == 429:
			busy++
			if minHint < 0 || apiErr.RetryAfter < minHint {
				minHint = apiErr.RetryAfter
			}
		case errors.As(err, &apiErr) && apiErr.StatusCode == 503:
			// Draining replica: it will never accept; the health loop will
			// drop it from the ring shortly.
			continue
		case errors.As(err, &apiErr):
			// Permanent rejection (the router validated the spec, so this
			// is a replica-side contract violation): surface it.
			return nil, serve.JobStatus{}, err
		default:
			// Transport error: strike the member so a dead replica leaves
			// the ring after FailThreshold strikes, then try the next one.
			if m.fault(r.opts.FailThreshold) {
				r.opts.Logf("replica %s unreachable during placement: %v", m.name, err)
				r.rebuildRing()
			}
		}
	}
	if busy > 0 {
		if minHint < time.Second {
			minHint = time.Second // honest floor: never tell clients to hammer
		}
		return nil, serve.JobStatus{}, &BusyError{Replicas: busy, RetryAfter: minHint}
	}
	return nil, serve.JobStatus{}, ErrNoReplicas
}

// watch follows one routed job to its terminal state: polling the placement,
// folding progress into the router-side view, forwarding cancellation, and
// rerouting on replica faults. It is the only goroutine that transitions the
// job, so reroutes are sequential and the terminal transition is unique.
func (r *Router) watch(j *Job) {
	defer r.jobsWG.Done()
	defer r.inflight.Add(-1)

	pollFails := 0
	for {
		select {
		case <-j.ctx.Done():
			r.cancelRemote(j)
			r.finishJob(j, serve.StateCanceled, cancelCause(j.ctx), nil)
			return
		default:
		}

		memberName, remoteID := j.placement()
		m := r.memberByName(memberName)
		st, err := m.client.Status(j.ctx, remoteID)
		if err != nil {
			if j.ctx.Err() != nil {
				continue // the ctx branch above finishes the job
			}
			var apiErr *serveclient.APIError
			if errors.As(err, &apiErr) && apiErr.StatusCode == 404 {
				// The replica restarted without the job: a fault, not a miss.
				pollFails = r.opts.PollFailLimit
			} else if !errors.As(err, &apiErr) {
				// Transport error: strike toward the member's threshold.
				if m.fault(r.opts.FailThreshold) {
					r.opts.Logf("replica %s unreachable while watching %s: %v", m.name, j.ID, err)
					r.rebuildRing()
				}
				pollFails++
			} else {
				pollFails++ // 5xx etc: count, tolerate transients
			}
			if pollFails >= r.opts.PollFailLimit || !m.Healthy() {
				if !r.reroute(j, fmt.Sprintf("replica %s lost (last error: %v)", memberName, err)) {
					return
				}
				pollFails = 0
			} else if serveclient.SleepContext(j.ctx, r.opts.PollInterval) != nil {
				continue
			}
			continue
		}
		pollFails = 0
		j.progress(st.Step)

		if st.State.Terminal() {
			switch st.State {
			case serve.StateSucceeded:
				if st.Result != nil {
					if st.Result.CacheHit {
						r.metrics.CacheHits.Add(1)
					} else {
						r.metrics.CacheMisses.Add(1)
					}
				}
				r.finishJob(j, serve.StateSucceeded, "", st.Result)
				return
			case serve.StateFailed:
				if strings.Contains(st.Error, serve.DrainAbortReason) {
					// The replica's drain aborted the job — a replica fault,
					// not a job failure: re-run it elsewhere.
					if !r.reroute(j, fmt.Sprintf("replica %s drain-aborted the job", memberName)) {
						return
					}
					continue
				}
				r.finishJob(j, serve.StateFailed, st.Error, nil)
				return
			case serve.StateCanceled:
				if j.ctx.Err() != nil || strings.Contains(st.Error, "deadline") {
					// The router's client canceled it, or the job's own
					// deadline expired: honest terminal cancellation.
					r.finishJob(j, serve.StateCanceled, st.Error, nil)
					return
				}
				// Canceled by a replica shutdown the job did not ask for.
				if !r.reroute(j, fmt.Sprintf("replica %s canceled the job during shutdown (%s)", memberName, st.Error)) {
					return
				}
				continue
			}
		}
		if serveclient.SleepContext(j.ctx, r.opts.PollInterval) != nil {
			continue
		}
	}
}

// reroute re-places a job after a replica fault, retrying saturated fleets
// under the shared backoff policy. It reports true when the job is running
// somewhere again; on false the job has reached a terminal state (reroute
// budget or admission attempts exhausted, or canceled mid-backoff) — either
// way the job is never silently dropped.
func (r *Router) reroute(j *Job, why string) bool {
	n := j.noteReroute()
	r.metrics.Rerouted.Add(1)
	if n > r.opts.MaxReroutes {
		r.finishJob(j, serve.StateFailed,
			fmt.Sprintf("fleet: job exceeded %d reroutes: %s", r.opts.MaxReroutes, why), nil)
		return false
	}
	r.opts.Logf("rerouting job %s (attempt %d/%d): %s", j.ID, n, r.opts.MaxReroutes, why)

	policy := r.opts.Backoff
	attempts := policy.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if j.ctx.Err() != nil {
			r.cancelRemote(j)
			r.finishJob(j, serve.StateCanceled, cancelCause(j.ctx), nil)
			return false
		}
		m, st, err := r.placeOnce(j.ctx, j)
		if err == nil {
			j.place(m.name, st.ID)
			return true
		}
		var hint time.Duration
		var busyErr *BusyError
		switch {
		case errors.As(err, &busyErr):
			hint = busyErr.RetryAfter
		case errors.Is(err, ErrNoReplicas):
			// Wait out a health interval: a replica may come back or a
			// fresh one may be marked healthy again.
			hint = r.opts.HealthInterval
		default:
			if j.ctx.Err() != nil {
				r.cancelRemote(j)
				r.finishJob(j, serve.StateCanceled, cancelCause(j.ctx), nil)
				return false
			}
			r.finishJob(j, serve.StateFailed, fmt.Sprintf("fleet: re-placement failed: %v", err), nil)
			return false
		}
		if serveclient.SleepContext(j.ctx, policy.Delay(attempt, hint)) != nil {
			r.cancelRemote(j)
			r.finishJob(j, serve.StateCanceled, cancelCause(j.ctx), nil)
			return false
		}
	}
	r.finishJob(j, serve.StateFailed,
		fmt.Sprintf("fleet: no replica accepted the rerouted job after %d attempts: %s", attempts, why), nil)
	return false
}

// cancelRemote best-effort cancels the job's current placement so an
// abandoned attempt does not keep burning a replica slot.
func (r *Router) cancelRemote(j *Job) {
	memberName, remoteID := j.placement()
	if remoteID == "" {
		return
	}
	m := r.memberByName(memberName)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = m.client.Cancel(ctx, remoteID)
}

// memberByName looks a member up; it always exists (membership is static).
func (r *Router) memberByName(name string) *member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[name]
}

// finishJob performs the terminal transition and bumps the counters exactly
// once.
func (r *Router) finishJob(j *Job, state serve.JobState, errMsg string, result *serve.Result) {
	if !j.finish(state, errMsg, result) {
		return
	}
	switch state {
	case serve.StateSucceeded:
		r.metrics.Succeeded.Add(1)
	case serve.StateFailed:
		r.metrics.Failed.Add(1)
		r.opts.Logf("job %s failed: %s", j.ID, errMsg)
	case serve.StateCanceled:
		r.metrics.Canceled.Add(1)
	}
}

// cancelCause extracts the cancellation reason of a job context.
func cancelCause(ctx context.Context) string {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	if cause == nil {
		return "canceled"
	}
	if cause == context.DeadlineExceeded {
		return "deadline exceeded"
	}
	return cause.Error()
}

// Job looks a routed job up by id.
func (r *Router) Job(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Status returns a job's API snapshot.
func (r *Router) Status(j *Job) serve.JobStatus { return j.status() }

// Cancel requests a routed job's cancellation; the watcher forwards it to
// the replica currently running the job.
func (r *Router) Cancel(j *Job, reason string) { j.Cancel(reason) }

// Draining reports whether the router has stopped admitting jobs.
func (r *Router) Draining() bool { return r.draining.Load() }

// Drain performs the graceful shutdown contract: stop admitting, let routed
// jobs reach terminal states within the timeout, then cancel survivors and
// wait for their watchers to unwind.
func (r *Router) Drain(timeout time.Duration) error {
	r.draining.Store(true)
	done := make(chan struct{})
	go func() {
		r.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		survivors := 0
		r.mu.Lock()
		jobs := make([]*Job, 0, len(r.jobs))
		for _, j := range r.jobs {
			jobs = append(jobs, j)
		}
		r.mu.Unlock()
		for _, j := range jobs {
			if !j.State().Terminal() {
				survivors++
				j.Cancel("aborted by router drain")
			}
		}
		r.opts.Logf("drain timeout: canceled %d surviving jobs", survivors)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			r.shutdown()
			return fmt.Errorf("fleet: drain: %d jobs did not unwind after cancel", survivors)
		}
	}
	r.shutdown()
	return nil
}

// Close shuts the router down without waiting for jobs to finish naturally:
// every non-terminal job is canceled. Intended for tests and error paths.
func (r *Router) Close() {
	r.draining.Store(true)
	r.mu.Lock()
	jobs := make([]*Job, 0, len(r.jobs))
	for _, j := range r.jobs {
		jobs = append(jobs, j)
	}
	r.mu.Unlock()
	for _, j := range jobs {
		if !j.State().Terminal() {
			j.Cancel("router closed")
		}
	}
	r.jobsWG.Wait()
	r.shutdown()
}

// shutdown stops the health loop (idempotent).
func (r *Router) shutdown() {
	r.closeOnce.Do(func() {
		close(r.stop)
		r.healthWG.Wait()
	})
}
