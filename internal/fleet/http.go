package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"islands/internal/serve"
	serveclient "islands/internal/serve/client"
)

// Handler returns the router's HTTP API. It speaks the same wire dialect as
// a single replica — serveclient (and therefore mpdata-load) points at a
// router or a replica interchangeably:
//
//	POST /v1/jobs              submit a job spec            -> 202 JobStatus
//	GET  /v1/jobs/{id}         routed status + placement    -> 200 JobStatus
//	GET  /v1/jobs/{id}/result  result once terminal         -> 200 JobStatus
//	POST /v1/jobs/{id}/cancel  cancel a routed job          -> 202 JobStatus
//	GET  /v1/fleet             membership + per-replica load -> 200 JSON
//	GET  /metrics              fleet text exposition
//	GET  /healthz              200 with >= 1 healthy replica, else 503
//
// SSE progress streams are a replica concern; the router reports step
// progress through the status poll instead.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", r.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", r.handleCancel)
	mux.HandleFunc("GET /v1/fleet", r.handleFleet)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	return mux
}

// apiError is the JSON error envelope (same shape as the replica API).
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec serve.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := r.Submit(req.Context(), spec)
	if err != nil {
		var busy *BusyError
		var apiErr *serveclient.APIError
		switch {
		case errors.As(err, &busy):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", serve.RetryAfterSeconds(busy.RetryAfter)))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		case errors.Is(err, ErrDraining), errors.Is(err, ErrNoReplicas):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		case errors.As(err, &apiErr):
			// Replica-side rejection that placement classified as permanent.
			writeJSON(w, apiErr.StatusCode, apiError{Error: apiErr.Message})
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, r.Status(j))
}

func (r *Router) jobOr404(w http.ResponseWriter, req *http.Request) (*Job, bool) {
	j, ok := r.Job(req.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return nil, false
	}
	return j, true
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	if j, ok := r.jobOr404(w, req); ok {
		writeJSON(w, http.StatusOK, r.Status(j))
	}
}

func (r *Router) handleResult(w http.ResponseWriter, req *http.Request) {
	j, ok := r.jobOr404(w, req)
	if !ok {
		return
	}
	st := r.Status(j)
	if !st.State.Terminal() {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job %s is %s, not finished", j.ID, st.State)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleCancel(w http.ResponseWriter, req *http.Request) {
	j, ok := r.jobOr404(w, req)
	if !ok {
		return
	}
	r.Cancel(j, "canceled by client")
	writeJSON(w, http.StatusAccepted, r.Status(j))
}

// FleetReplica is one row of GET /v1/fleet: a replica's membership state and
// its last health probe's load snapshot.
type FleetReplica struct {
	Name    string             `json:"name"`
	Healthy bool               `json:"healthy"`
	Stats   serve.ReplicaStats `json:"stats"`
}

// FleetStatus is the payload of GET /v1/fleet.
type FleetStatus struct {
	Replicas []FleetReplica `json:"replicas"`
	Draining bool           `json:"draining"`
}

func (r *Router) handleFleet(w http.ResponseWriter, _ *http.Request) {
	members := r.memberList()
	st := FleetStatus{Draining: r.draining.Load()}
	for _, m := range members {
		stats, _ := m.Stats()
		st.Replicas = append(st.Replicas, FleetReplica{Name: m.name, Healthy: m.Healthy(), Stats: stats})
	}
	// Deterministic order for scripts and tests.
	sort.Slice(st.Replicas, func(i, k int) bool { return st.Replicas[i].Name < st.Replicas[k].Name })
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	healthy, total := r.healthyCount()
	g := fleetGauges{
		ReplicasHealthy: healthy,
		ReplicasTotal:   total,
		JobsInflight:    int(r.inflight.Load()),
		Draining:        r.draining.Load(),
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.metrics.write(w, g)
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if r.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if healthy, _ := r.healthyCount(); healthy == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no healthy replicas")
		return
	}
	fmt.Fprintln(w, "ok")
}
