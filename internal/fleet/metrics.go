package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the router's instrumentation: fleet-level job counters plus the
// placement/failure-model counters the smoke tests gate on (zero lost jobs
// means fleet_jobs_submitted_total == succeeded + failed + canceled once the
// fleet is idle, with fleet_jobs_failed_total staying 0 under pure replica
// faults).
type Metrics struct {
	Submitted atomic.Uint64 // jobs accepted and placed by the router
	Rejected  atomic.Uint64 // aggregate 429s: every healthy replica was saturated
	Succeeded atomic.Uint64
	Failed    atomic.Uint64
	Canceled  atomic.Uint64

	Placements atomic.Uint64 // replica submissions that were accepted (first placements + reroutes)
	Steals     atomic.Uint64 // placements that landed off the key's home replica (cold key or saturated home)
	Rerouted   atomic.Uint64 // replica faults survived: the job was re-placed and re-run elsewhere

	CacheHits   atomic.Uint64 // job results that reused a warm compiled engine somewhere in the fleet
	CacheMisses atomic.Uint64
}

// fleetGauges are the live values injected at exposition time.
type fleetGauges struct {
	ReplicasHealthy int
	ReplicasTotal   int
	JobsInflight    int
	Draining        bool
}

// write renders the Prometheus text exposition format.
func (m *Metrics) write(w io.Writer, g fleetGauges) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("fleet_jobs_submitted_total", "Jobs accepted and placed by the router.", m.Submitted.Load())
	c("fleet_jobs_rejected_total", "Jobs rejected because every healthy replica was saturated (aggregate 429).", m.Rejected.Load())
	c("fleet_jobs_succeeded_total", "Jobs that completed successfully somewhere in the fleet.", m.Succeeded.Load())
	c("fleet_jobs_failed_total", "Jobs that failed for job-side reasons (kernel failure, reroute budget exhausted).", m.Failed.Load())
	c("fleet_jobs_canceled_total", "Jobs canceled by the client or their own deadline.", m.Canceled.Load())
	c("fleet_placements_total", "Replica submissions that were accepted (first placements and reroutes).", m.Placements.Load())
	c("fleet_steals_total", "Placements that landed off the key's home replica (work stealing).", m.Steals.Load())
	c("fleet_reroutes_total", "Replica faults survived: jobs re-placed and re-run on another replica.", m.Rerouted.Load())
	c("fleet_cache_hits_total", "Job results that reused a warm compiled engine somewhere in the fleet.", m.CacheHits.Load())
	c("fleet_cache_misses_total", "Job results that compiled a fresh engine.", m.CacheMisses.Load())
	gauge("fleet_replicas_healthy", "Replicas currently accepting placements.", int64(g.ReplicasHealthy))
	gauge("fleet_replicas_total", "Configured replicas, healthy or not.", int64(g.ReplicasTotal))
	gauge("fleet_jobs_inflight", "Jobs placed but not yet terminal.", int64(g.JobsInflight))
	draining := int64(0)
	if g.Draining {
		draining = 1
	}
	gauge("fleet_draining", "1 while the router drains (no admissions).", draining)
}
