package fleet

import (
	"context"
	"fmt"
	"sync"

	"islands/internal/serve"
)

// Job is one routed job: the router-side FSM mirroring the replica states
// (serve.JobState), plus the placement the watcher is currently following.
// The FSM transitions to a terminal state exactly once no matter how many
// replicas the job visits — a reroute replaces the placement, never the job.
type Job struct {
	ID   string
	Spec serve.Spec

	// key is the consistent-hash point of the job's engine CacheKey; home
	// is the ring owner at placement time (steal accounting compares the
	// actual placement against it).
	key  uint64
	home string

	ctx    context.Context
	cancel context.CancelCauseFunc

	mu       sync.Mutex
	state    serve.JobState
	step     int
	errMsg   string
	result   *serve.Result
	replica  string // member name currently (or last) running the job
	remoteID string // replica-side job id of the current placement
	reroutes int    // replica faults survived
	stolen   bool   // true if any placement landed off-home

	done chan struct{}
}

func newFleetJob(id string, spec serve.Spec, key uint64) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	return &Job{
		ID:     id,
		Spec:   spec,
		key:    key,
		ctx:    ctx,
		cancel: cancel,
		state:  serve.StateQueued,
		done:   make(chan struct{}),
	}
}

// Cancel requests the job's cancellation; the watcher forwards it to the
// current replica and finishes the job canceled.
func (j *Job) Cancel(reason string) { j.cancel(fmt.Errorf("%s", reason)) }

// Done returns the channel closed at the terminal transition.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current state.
func (j *Job) State() serve.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// place records a (re)placement: the job is running on member as remoteID.
func (j *Job) place(memberName, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.replica = memberName
	j.remoteID = remoteID
	j.state = serve.StateRunning
	if memberName != j.home {
		j.stolen = true
	}
}

// placement returns the member name and replica-side id the watcher polls.
func (j *Job) placement() (memberName, remoteID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replica, j.remoteID
}

// noteReroute counts a survived replica fault and reports the new total.
func (j *Job) noteReroute() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.reroutes++
	return j.reroutes
}

// progress folds a replica status poll into the router-side view.
func (j *Job) progress(step int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if step > j.step {
		j.step = step
	}
}

// finish performs the terminal transition exactly once, reporting whether
// this call did it — the exactly-once guarantee the failure-injection test
// asserts (a replica completing a job the router already gave up on cannot
// double-count).
func (j *Job) finish(state serve.JobState, errMsg string, result *serve.Result) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.mu.Unlock()
	close(j.done)
	return true
}

// status snapshots the job in the single-server wire format (plus the fleet
// extras), so serveclient works identically against a router and a replica.
func (j *Job) status() serve.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return serve.JobStatus{
		ID:       j.ID,
		State:    j.state,
		Step:     j.step,
		Steps:    j.Spec.Steps,
		Error:    j.errMsg,
		Result:   j.result,
		Spec:     j.Spec,
		Replica:  j.replica,
		Reroutes: j.reroutes,
	}
}
