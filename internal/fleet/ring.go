package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over replica names. Every member contributes
// vnodes points (FNV-64a of "name#i"), and a key is owned by the first point
// clockwise from the key's hash. Membership changes therefore remap only the
// keys whose owner changed — a replica joining or leaving moves ~1/N of the
// key space, so the fleet's warm engine caches survive churn instead of being
// reshuffled wholesale.
type ring struct {
	points   []ringPoint
	nMembers int
}

type ringPoint struct {
	hash   uint64
	member string
}

// hashString is the ring's hash: FNV-64a pushed through a 64-bit avalanche
// finalizer. Bare FNV clusters badly on short, similar strings (vnode labels
// differ in one or two trailing bytes), which skews point placement enough to
// unbalance small rings; the finalizer spreads those correlated inputs over
// the full key space. Stable across processes so the router and any offline
// tooling agree on placement.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds a ring over the members with vnodes points each (vnodes <= 0
// selects 64, enough to balance small fleets within a few percent).
func newRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]struct{}, len(members))
	r := &ring{}
	for _, m := range members {
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashString(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	r.nMembers = len(seen)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // deterministic tie-break across builds
	})
	return r
}

// owner returns the key's home member, "" on an empty ring.
func (r *ring) owner(key uint64) string {
	succ := r.successors(key, 1)
	if len(succ) == 0 {
		return ""
	}
	return succ[0]
}

// successors returns up to n distinct members in ring order starting at the
// key's owner — the placement order: the home replica first (a warm engine
// for this key lives there, if anywhere), then the work-stealing fallbacks
// for when the home queue is saturated. Stealing walks the ring rather than
// picking randomly so a given key's overflow lands on a stable second
// replica, which can then warm its own engine for the key.
func (r *ring) successors(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.nMembers {
		n = r.nMembers
	}
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if _, dup := seen[p.member]; dup {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}
