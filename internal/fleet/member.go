package fleet

import (
	"context"
	"sync"
	"time"

	"islands/internal/serve"
	serveclient "islands/internal/serve/client"
)

// member is one replica: its typed client plus the health checker's view.
// Members start optimistically healthy (the first probe lands within one
// health interval); consecutive probe failures past the threshold take a
// member out of the placement ring, and a single successful probe puts it
// back. A replica reporting itself draining is treated as down for placement
// — it no longer admits jobs — while its in-flight jobs are still polled.
type member struct {
	name   string
	client *serveclient.Client

	mu          sync.Mutex
	healthy     bool
	consecFails int
	stats       serve.ReplicaStats
	lastSeen    time.Time
}

func newMember(name string) *member {
	return &member{name: name, client: serveclient.New(name), healthy: true}
}

// Healthy reports whether the member is currently in the placement ring.
func (m *member) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.healthy
}

// Stats returns the last successful probe's snapshot.
func (m *member) Stats() (serve.ReplicaStats, time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats, m.lastSeen
}

// probe folds one health-check result in and reports whether the member's
// placement eligibility flipped (the caller rebuilds the ring on a flip).
func (m *member) probe(stats serve.ReplicaStats, err error, failThreshold int) (flipped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	was := m.healthy
	if err != nil {
		m.consecFails++
		if m.consecFails >= failThreshold {
			m.healthy = false
		}
	} else {
		m.consecFails = 0
		m.stats = stats
		m.lastSeen = time.Now()
		m.healthy = !stats.Draining
	}
	return m.healthy != was
}

// fault records a transport error observed outside the health loop (a failed
// placement or status poll) so a dead replica leaves the ring after
// failThreshold strikes instead of waiting for the next scheduled probe.
func (m *member) fault(failThreshold int) (flipped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.consecFails++
	if m.healthy && m.consecFails >= failThreshold {
		m.healthy = false
		return true
	}
	return false
}

// healthLoop probes every member each interval until stop closes, rebuilding
// the placement ring whenever a member's eligibility flips.
func (r *Router) healthLoop() {
	defer r.healthWG.Done()
	t := time.NewTicker(r.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll checks every member concurrently so one hung replica cannot delay
// the others' probes past the interval.
func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, m := range r.memberList() {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.HealthInterval)
			defer cancel()
			stats, err := m.client.Stats(ctx)
			if m.probe(stats, err, r.opts.FailThreshold) {
				switch {
				case m.Healthy():
					r.opts.Logf("replica %s back in the placement ring", m.name)
				case err != nil:
					r.opts.Logf("replica %s marked down: %v", m.name, err)
				default:
					r.opts.Logf("replica %s draining, removed from placement", m.name)
				}
				r.rebuildRing()
			}
		}(m)
	}
	wg.Wait()
}
