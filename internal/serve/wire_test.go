package serve_test

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"islands/internal/serve"
	serveclient "islands/internal/serve/client"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-time.Second, 1},
		{time.Millisecond, 1},
		// The old float rendering int(0.3+0.999) truncated to 0 — a header
		// telling clients to retry immediately, which is the storm.
		{300 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2*time.Second + time.Nanosecond, 3},
	}
	for _, c := range cases {
		if got := serve.RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%s) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestHTTPRetryAfterNeverZero pins the wire contract for sub-second backoff
// hints: the Retry-After header must render as an integer >= 1, never "0"
// (which clients read as "retry now" — the storm amplifier).
func TestHTTPRetryAfterNeverZero(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, QueueDepth: 1, RetryAfter: 300 * time.Millisecond,
		EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()
	defer close(gate)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := serveclient.New(hs.URL)
	ctx := t.Context()

	running, err := client.Submit(ctx, smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := srv.Job(running.ID)
	waitState(t, j, serve.StateRunning)
	if _, err := client.Submit(ctx, smallSpec(1)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"grid":"32x16x8","steps":1,"processors":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit into full queue = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q for a 300ms hint, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
}

// TestStepLabelCardinalityBounded asserts ObserveStep folds unknown strategy
// labels into "other" instead of minting an unbounded time series per input
// string.
func TestStepLabelCardinalityBounded(t *testing.T) {
	srv := serve.NewServer(serve.Options{Slots: 1, Logf: t.Logf})
	defer srv.Close()
	m := srv.Metrics()
	for i := 0; i < 100; i++ {
		m.ObserveStep("hostile-label-"+strconv.Itoa(i), time.Millisecond)
	}
	m.ObserveStep("islands-of-cores", time.Millisecond)

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	exposition, err := serveclient.New(hs.URL).Metrics(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exposition, "hostile-label-") {
		t.Fatal("hostile strategy label leaked into the metrics exposition")
	}
	if !strings.Contains(exposition, `serve_step_seconds_count{strategy="other"} 100`) {
		t.Fatal("unknown labels were not folded into the bounded \"other\" series")
	}
	if !strings.Contains(exposition, `serve_step_seconds_count{strategy="islands-of-cores"} 1`) {
		t.Fatal("known strategy label missing from the exposition")
	}
}

// TestSolverLabelCardinalityBounded asserts the per-solver job counters fold
// names outside the solver catalog into "other" instead of minting a labeled
// series per input string, and that the unlabeled totals existing scrapers
// parse survive alongside the labels.
func TestSolverLabelCardinalityBounded(t *testing.T) {
	srv := serve.NewServer(serve.Options{Slots: 1, Logf: t.Logf})
	defer srv.Close()
	m := srv.Metrics()
	for i := 0; i < 50; i++ {
		m.JobSubmitted("evil-solver-" + strconv.Itoa(i))
	}
	m.JobSubmitted("heat")
	m.JobSucceeded("heat")

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	exposition, err := serveclient.New(hs.URL).Metrics(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exposition, "evil-solver-") {
		t.Fatal("unknown solver label leaked into the metrics exposition")
	}
	if !strings.Contains(exposition, `serve_jobs_submitted_total{solver="other"} 50`) {
		t.Fatal("unknown solver labels were not folded into the bounded \"other\" series")
	}
	if !strings.Contains(exposition, `serve_jobs_submitted_total{solver="heat"} 1`) ||
		!strings.Contains(exposition, `serve_jobs_succeeded_total{solver="heat"} 1`) {
		t.Fatal("per-solver job counters missing from the exposition")
	}
	if !strings.Contains(exposition, "\nserve_jobs_submitted_total 51\n") {
		t.Fatal("unlabeled serve_jobs_submitted_total line missing or wrong")
	}
}

// TestStatsEndpoint pins the /v1/stats probe the fleet router polls.
func TestStatsEndpoint(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, QueueDepth: 4, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()
	defer close(gate)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := serveclient.New(hs.URL)
	ctx := t.Context()

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SlotsTotal != 1 || st.QueueCapacity != 4 || st.Draining || st.Running != 0 {
		t.Fatalf("idle stats = %+v", st)
	}

	running, err := client.Submit(ctx, smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := srv.Job(running.ID)
	waitState(t, j, serve.StateRunning)
	st, err = client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Running != 1 || st.SlotsBusy != 1 {
		t.Fatalf("busy stats = %+v, want 1 running on 1 busy slot", st)
	}
}
