package serve_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/serve"
	serveclient "islands/internal/serve/client"
	"islands/internal/stencil"
	"islands/internal/topology"
)

// waitTerminal blocks until the job finishes (or the test times out).
func waitTerminal(t *testing.T, j *serve.Job) serve.JobState {
	t.Helper()
	select {
	case <-j.Done():
		return j.State()
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not reach a terminal state (stuck %s)", j.ID, j.State())
		return ""
	}
}

// waitState polls until the job reaches the wanted (non-terminal) state.
func waitState(t *testing.T, j *serve.Job, want serve.JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.State(); st == want {
			return
		} else if st.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s", j.ID, st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (state %s)", j.ID, want, j.State())
}

// gatedEngine is a deterministic test engine: every Step consumes one token
// from the shared gate (a closed gate free-runs), and Abort unblocks a pending
// Step with an error — the same contract the real runner's barrier-abort path
// provides.
type gatedEngine struct {
	gate <-chan struct{}

	mu      sync.Mutex
	aborted bool
	reason  string
	abortCh chan struct{}
}

func (e *gatedEngine) Reset() error { return nil }

func (e *gatedEngine) Step() error {
	e.mu.Lock()
	if e.aborted {
		reason := e.reason
		e.mu.Unlock()
		return fmt.Errorf("gated engine aborted: %s", reason)
	}
	ch := e.abortCh
	e.mu.Unlock()
	select {
	case <-e.gate:
		return nil
	case <-ch:
		e.mu.Lock()
		reason := e.reason
		e.mu.Unlock()
		return fmt.Errorf("gated engine aborted: %s", reason)
	}
}

func (e *gatedEngine) Abort(reason string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.aborted {
		e.aborted = true
		e.reason = reason
		close(e.abortCh)
	}
}

func (e *gatedEngine) Checksums() serve.Checksums { return serve.Checksums{Sum: 1} }
func (e *gatedEngine) SetProfiling(bool)          {}
func (e *gatedEngine) Profile() *exec.Profile     { return nil }
func (e *gatedEngine) Info() serve.EngineInfo     { return serve.EngineInfo{KSteps: 1} }
func (e *gatedEngine) Close()                     {}

// gatedFactory builds gated engines sharing one gate channel. Close the gate
// to let every engine free-run; send tokens to release single steps.
func gatedFactory(gate <-chan struct{}) serve.EngineFactory {
	return func(serve.NormSpec) (serve.Engine, error) {
		return &gatedEngine{gate: gate, abortCh: make(chan struct{})}, nil
	}
}

func smallSpec(steps int) serve.Spec {
	return serve.Spec{Grid: "32x16x8", Steps: steps, Processors: 2}
}

// TestServeEndToEndAllStrategies runs every strategy on real MPDATA engines,
// sequentially so the cache behavior is deterministic: round 1 compiles (4
// misses), later rounds reuse (hits > misses after warm-up). All strategies
// must produce the identical checksum — the repo's bit-identical contract.
func TestServeEndToEndAllStrategies(t *testing.T) {
	srv := serve.NewServer(serve.Options{Slots: 1, Logf: t.Logf})
	defer srv.Close()

	specs := []serve.Spec{
		{Grid: "32x16x8", Steps: 2, Processors: 2, Strategy: "original"},
		{Grid: "32x16x8", Steps: 2, Processors: 2, Strategy: "3+1d"},
		{Grid: "32x16x8", Steps: 2, Processors: 2, Strategy: "islands"},
		{Grid: "32x16x8", Steps: 2, Processors: 2, Strategy: "islands", CoreIslands: true},
	}
	var sums []float64
	const rounds = 3
	for round := 0; round < rounds; round++ {
		for _, spec := range specs {
			j, err := srv.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if st := waitTerminal(t, j); st != serve.StateSucceeded {
				t.Fatalf("round %d %s/%v: state %s, err %q", round, spec.Strategy, spec.CoreIslands, st, srv.Status(j).Error)
			}
			res := srv.Status(j).Result
			if res == nil {
				t.Fatal("succeeded job has no result")
			}
			if res.Steps != 2 {
				t.Fatalf("result steps = %d, want 2", res.Steps)
			}
			// Clamp boundaries leak a little mass at the domain edge;
			// anything beyond ~1e-5 relative would be a real bug.
			if res.Checksums.MassDrift > 1e-5 || res.Checksums.MassDrift < -1e-5 {
				t.Fatalf("mass drift %g exceeds tolerance", res.Checksums.MassDrift)
			}
			if round > 0 && !res.CacheHit {
				t.Fatalf("round %d %s: expected a schedule-cache hit", round, spec.Strategy)
			}
			sums = append(sums, res.Checksums.Sum)
		}
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Fatalf("checksum diverged: job %d sum %g != %g", i, sums[i], sums[0])
		}
	}
	ps := srv.PoolStats()
	if ps.Misses != 4 {
		t.Fatalf("cache misses = %d, want 4 (one compile per strategy)", ps.Misses)
	}
	if ps.Hits != uint64(len(specs)*(rounds-1)) {
		t.Fatalf("cache hits = %d, want %d", ps.Hits, len(specs)*(rounds-1))
	}
	if ps.Hits <= ps.Misses {
		t.Fatalf("cache hits %d not greater than misses %d after warm-up", ps.Hits, ps.Misses)
	}
}

// boomEngine wraps a real compiled runner whose kernel panics: the serve-level
// half of the failure-surfacing contract.
type boomEngine struct{ r *exec.Runner }

func (e *boomEngine) Reset() error               { return nil }
func (e *boomEngine) Step() error                { return e.r.Run() }
func (e *boomEngine) Abort(reason string)        { e.r.Abort(reason) }
func (e *boomEngine) Checksums() serve.Checksums { return serve.Checksums{} }
func (e *boomEngine) SetProfiling(bool)          {}
func (e *boomEngine) Profile() *exec.Profile     { return nil }
func (e *boomEngine) Info() serve.EngineInfo     { return serve.EngineInfo{KSteps: 1} }
func (e *boomEngine) Close()                     { e.r.Close() }

// newBoomEngine compiles a real runner around a kernel that panics on the
// i=0 face — one worker dies mid-step, the others unwind at the barriers.
func newBoomEngine(n serve.NormSpec) (serve.Engine, error) {
	kern := func(env *stencil.Env, r grid.Region) {
		if r.I0 == 0 {
			panic("kaboom")
		}
		out, in := env.Field("out"), env.Field("in")
		stencil.ForEach(r, func(i, j, k int) {
			out.Set(i, j, k, in.At(i, j, k))
		})
	}
	kp, err := stencil.BuildProgram("boom", []string{"in"}, "out", []stencil.KernelStage{{
		Stage: stencil.Stage{
			Name:   "out",
			Inputs: []stencil.Input{{From: "in", Offsets: []stencil.Offset{{}}}},
			Flops:  1,
		},
		Kernel: kern,
	}})
	if err != nil {
		return nil, err
	}
	m, err := topology.UV2000(n.Processors)
	if err != nil {
		return nil, err
	}
	in := grid.NewField("in", n.Domain)
	in.Fill(1)
	r, err := exec.NewRunner(exec.Config{
		Machine: m, Strategy: exec.IslandsOfCores, Boundary: stencil.Clamp,
		Steps: 1, BlockI: 8,
	}, kp, map[string]*grid.Field{"in": in}, "in")
	if err != nil {
		return nil, err
	}
	return &boomEngine{r: r}, nil
}

// TestWorkerPanicFailsOnlyThatJob is the failure-isolation satellite: a kernel
// panic fails exactly the submitting job (error verbatim), the slot is
// released, and the pool keeps serving subsequent jobs.
func TestWorkerPanicFailsOnlyThatJob(t *testing.T) {
	const boomNI = 20 // sentinel grid width routed to the panicking engine
	factory := func(n serve.NormSpec) (serve.Engine, error) {
		if n.Domain.NI == boomNI {
			return newBoomEngine(n)
		}
		return serve.NewSolverEngine(n)
	}
	srv := serve.NewServer(serve.Options{Slots: 1, EngineFactory: factory, Logf: t.Logf})
	defer srv.Close()

	boom, err := srv.Submit(serve.Spec{Grid: "20x16x8", Steps: 3, Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, boom); st != serve.StateFailed {
		t.Fatalf("panicking job state = %s, want failed", st)
	}
	errMsg := srv.Status(boom).Error
	if !strings.Contains(errMsg, "kaboom") {
		t.Fatalf("job error %q does not carry the original kernel panic", errMsg)
	}
	if strings.Contains(errMsg, "barrier aborted") {
		t.Fatalf("job error %q reports a secondary abort, not the kernel panic", errMsg)
	}

	// The slot must be free again and healthy jobs keep flowing.
	for i := 0; i < 3; i++ {
		j, err := srv.Submit(smallSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, j); st != serve.StateSucceeded {
			t.Fatalf("job %d after panic: state %s, err %q", i, st, srv.Status(j).Error)
		}
	}
	ps := srv.PoolStats()
	if ps.Busy != 0 {
		t.Fatalf("pool busy = %d after all jobs finished, want 0", ps.Busy)
	}
	if got := srv.Metrics().Failed.Load(); got != 1 {
		t.Fatalf("failed counter = %d, want 1", got)
	}
}

// TestQueueBackpressure fills the queue behind a blocked slot and asserts the
// 429-style rejection plus its metric, then releases the gate and checks that
// every admitted job still completes.
func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, QueueDepth: 2, RetryAfter: 2 * time.Second,
		EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()

	running, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, serve.StateRunning)

	queued := make([]*serve.Job, 0, 2)
	for i := 0; i < 2; i++ {
		j, err := srv.Submit(smallSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	if d := srv.QueueDepth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}

	_, err = srv.Submit(smallSpec(1))
	var full *serve.ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("submit into full queue = %v, want ErrQueueFull", err)
	}
	if full.RetryAfter != 2*time.Second {
		t.Fatalf("rejection hint = %s, want 2s", full.RetryAfter)
	}
	if got := srv.Metrics().Rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	close(gate) // free-run: the blocked slot and both queued jobs finish
	for _, j := range append([]*serve.Job{running}, queued...) {
		if st := waitTerminal(t, j); st != serve.StateSucceeded {
			t.Fatalf("job %s state = %s, want succeeded", j.ID, st)
		}
	}
}

// TestCancelQueuedBeforeAdmission cancels a job that is still waiting in the
// queue: it must turn canceled immediately, without ever occupying a slot.
func TestCancelQueuedBeforeAdmission(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()

	running, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, serve.StateRunning)
	victim, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}

	srv.Cancel(victim, "canceled by test")
	if st := waitTerminal(t, victim); st != serve.StateCanceled {
		t.Fatalf("queued victim state = %s, want canceled", st)
	}
	if msg := srv.Status(victim).Error; !strings.Contains(msg, "canceled by test") {
		t.Fatalf("victim error %q does not carry the cancel reason", msg)
	}
	if d := srv.QueueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after cancel, want 0", d)
	}
	if got := srv.Metrics().Canceled.Load(); got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}

	close(gate)
	if st := waitTerminal(t, running); st != serve.StateSucceeded {
		t.Fatalf("running job state = %s, want succeeded", st)
	}
}

// TestCancelRunningMidStep cancels a job whose engine is blocked inside a
// step: the abort must travel the engine's barrier-abort path, the job ends
// canceled, and the poisoned engine is discarded (the next identical job
// compiles fresh instead of reusing it).
func TestCancelRunningMidStep(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()

	j, err := srv.Submit(smallSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, serve.StateRunning) // engine is blocked inside Step 1

	srv.Cancel(j, "canceled by client")
	if st := waitTerminal(t, j); st != serve.StateCanceled {
		t.Fatalf("state = %s, want canceled", st)
	}
	if msg := srv.Status(j).Error; !strings.Contains(msg, "canceled by client") {
		t.Fatalf("error %q does not carry the cancel reason", msg)
	}

	// The aborted engine must not be cached: the next identical job misses.
	close(gate)
	j2, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j2); st != serve.StateSucceeded {
		t.Fatalf("follow-up state = %s, want succeeded", st)
	}
	if res := srv.Status(j2).Result; res.CacheHit {
		t.Fatal("follow-up job hit the cache; the poisoned engine was reused")
	}
}

// TestCancelRunningRealEngine drives the real barrier-abort path end to end:
// a long MPDATA job is canceled mid-run and must come back canceled promptly.
func TestCancelRunningRealEngine(t *testing.T) {
	srv := serve.NewServer(serve.Options{Slots: 1, Logf: t.Logf})
	defer srv.Close()

	j, err := srv.Submit(serve.Spec{Grid: "48x32x8", Steps: 100000, Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, serve.StateRunning)
	time.Sleep(20 * time.Millisecond) // land inside the step loop
	srv.Cancel(j, "canceled by client")
	if st := waitTerminal(t, j); st != serve.StateCanceled {
		t.Fatalf("state = %s, want canceled (err %q)", st, srv.Status(j).Error)
	}
	done := srv.Status(j)
	if done.Step >= 100000 {
		t.Fatalf("job ran to completion (%d steps) despite the cancel", done.Step)
	}
}

// TestServeKStepJobs is the serving half of the temporal-blocking
// acceptance: a k=4 job and a k=1 job of the same shape produce identical
// checksums but never share an engine (KSteps is part of the cache key —
// the block structure and widened halos are compiled in), repeat k=4 jobs
// do reuse theirs, and progress advances in whole blocks.
func TestServeKStepJobs(t *testing.T) {
	srv := serve.NewServer(serve.Options{Slots: 1, Logf: t.Logf})
	defer srv.Close()

	// NI=32 over 2 islands leaves 16-wide parts, enough for the 12-cell
	// k=4 halo of MPDATA.
	run := func(ksteps int) *serve.Result {
		t.Helper()
		j, err := srv.Submit(serve.Spec{Grid: "32x16x8", Steps: 4, Processors: 2, KSteps: ksteps})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, j); st != serve.StateSucceeded {
			t.Fatalf("ksteps=%d: state %s, err %q", ksteps, st, srv.Status(j).Error)
		}
		res := srv.Status(j).Result
		if res.Steps != 4 {
			t.Fatalf("ksteps=%d: result steps = %d, want 4", ksteps, res.Steps)
		}
		return res
	}
	plain := run(1)
	blocked := run(4)
	if blocked.CacheHit {
		t.Fatal("k=4 job reused the k=1 engine — KSteps missing from the cache key")
	}
	if blocked.Checksums != plain.Checksums {
		t.Fatalf("k=4 checksums %+v differ from k=1's %+v", blocked.Checksums, plain.Checksums)
	}
	if again := run(4); !again.CacheHit {
		t.Fatal("repeat k=4 job missed the engine cache")
	}
	ps := srv.PoolStats()
	if ps.Misses != 2 {
		t.Fatalf("cache misses = %d, want 2 (one engine per k)", ps.Misses)
	}
}

// TestCancelKStepMidBlock cancels a temporally blocked job while workers are
// inside a k-step block on a real engine: the barrier-abort path must stop
// the block promptly and the job must come back canceled, not stuck or
// succeeded.
func TestCancelKStepMidBlock(t *testing.T) {
	srv := serve.NewServer(serve.Options{Slots: 1, Logf: t.Logf})
	defer srv.Close()

	j, err := srv.Submit(serve.Spec{Grid: "48x32x8", Steps: 100000, Processors: 2, KSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, serve.StateRunning)
	time.Sleep(20 * time.Millisecond) // land inside the block loop
	srv.Cancel(j, "canceled by client")
	if st := waitTerminal(t, j); st != serve.StateCanceled {
		t.Fatalf("state = %s, want canceled (err %q)", st, srv.Status(j).Error)
	}
	if done := srv.Status(j); done.Step >= 100000 {
		t.Fatalf("job ran to completion (%d steps) despite the cancel", done.Step)
	}
	// The slot must keep serving: the poisoned engine is discarded and a
	// fresh one compiled.
	next, err := srv.Submit(serve.Spec{Grid: "48x32x8", Steps: 4, Processors: 2, KSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, next); st != serve.StateSucceeded {
		t.Fatalf("follow-up job state = %s, err %q", st, srv.Status(next).Error)
	}
}

// TestDrainGraceful checks the happy drain path: queued and running jobs all
// finish within the timeout and the drain reports success while refusing new
// admissions.
func TestDrainGraceful(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})

	running, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, serve.StateRunning)
	var queued []*serve.Job
	for i := 0; i < 2; i++ {
		j, err := srv.Submit(smallSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(30 * time.Second) }()

	// Draining servers refuse new work immediately.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Submit(smallSpec(1)); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}

	close(gate) // everything in flight finishes
	if err := <-drainErr; err != nil {
		t.Fatalf("drain = %v, want nil", err)
	}
	for _, j := range append([]*serve.Job{running}, queued...) {
		if st := j.State(); st != serve.StateSucceeded {
			t.Fatalf("job %s state after drain = %s, want succeeded", j.ID, st)
		}
	}
}

// TestDrainTimeoutAbortsSurvivors checks the drain contract's hard edge: jobs
// that outlive the timeout are aborted and reported failed — both the one
// blocked mid-step and the one still queued behind it.
func TestDrainTimeoutAbortsSurvivors(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer close(gate)

	running, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, serve.StateRunning)
	queued, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}

	if err := srv.Drain(50 * time.Millisecond); err != nil {
		t.Fatalf("drain = %v, want nil (survivors aborted within grace)", err)
	}
	for _, j := range []*serve.Job{running, queued} {
		if st := j.State(); st != serve.StateFailed {
			t.Fatalf("survivor %s state = %s, want failed", j.ID, st)
		}
		if msg := srv.Status(j).Error; !strings.Contains(msg, "drain") {
			t.Fatalf("survivor %s error %q does not mention the drain", j.ID, msg)
		}
	}
	if got := srv.Metrics().Failed.Load(); got != 2 {
		t.Fatalf("failed counter = %d, want 2", got)
	}
}

// TestJobDeadlineExpires submits a job with a deadline shorter than its gated
// run: it must come back canceled with the deadline as the reason.
func TestJobDeadlineExpires(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()
	defer close(gate)

	spec := smallSpec(10)
	spec.TimeoutMs = 50
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != serve.StateCanceled {
		t.Fatalf("state = %s, want canceled", st)
	}
	if msg := srv.Status(j).Error; !strings.Contains(msg, "deadline") {
		t.Fatalf("error %q does not mention the deadline", msg)
	}
}

// TestHTTPAPIRoundTrip exercises the HTTP surface end to end with the typed
// client: submit, SSE progress, result, metrics, bad requests.
func TestHTTPAPIRoundTrip(t *testing.T) {
	gate := make(chan struct{}, 16)
	srv := serve.NewServer(serve.Options{
		Slots: 1, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := serveclient.New(hs.URL)
	ctx := context.Background()

	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// Bad specs are rejected with a diagnostic, not accepted.
	_, err := client.Submit(ctx, serve.Spec{Grid: "0x0x0", Steps: 1})
	var apiErr *serveclient.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("bad spec submit = %v, want 400", err)
	}
	if _, err := client.Status(ctx, "j99999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown job status = %v, want 404", err)
	}

	st, err := client.Submit(ctx, smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateQueued && st.State != serve.StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}

	// Result before completion conflicts.
	if _, err := client.Result(ctx, st.ID); !errors.As(err, &apiErr) || apiErr.StatusCode != 409 {
		t.Fatalf("early result = %v, want 409", err)
	}

	// Stream events; release the gate only after the stream is attached so
	// the progress events are observed, not raced.
	var events []serve.Event
	attached := make(chan struct{})
	streamed := make(chan error, 1)
	go func() {
		first := true
		streamed <- client.Events(ctx, st.ID, func(ev serve.Event) bool {
			if first {
				close(attached)
				first = false
			}
			events = append(events, ev)
			return true
		})
	}()
	<-attached
	for i := 0; i < 3; i++ {
		gate <- struct{}{}
	}
	if err := <-streamed; err != nil {
		t.Fatalf("events stream: %v", err)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.State != serve.StateSucceeded {
		t.Fatalf("last event = %+v, want done/succeeded", last)
	}
	progress := 0
	for _, ev := range events {
		if ev.Type == "progress" {
			progress++
			if ev.Steps != 3 {
				t.Fatalf("progress event steps = %d, want 3", ev.Steps)
			}
		}
	}
	if progress == 0 {
		t.Fatal("no progress events observed on the live stream")
	}

	final, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateSucceeded || final.Result == nil || final.Result.Steps != 3 {
		t.Fatalf("final = %+v, want succeeded with 3 steps", final)
	}

	// A finished job's event stream replays the terminal event immediately.
	var replay []serve.Event
	if err := client.Events(ctx, st.ID, func(ev serve.Event) bool {
		replay = append(replay, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(replay) == 0 || replay[len(replay)-1].Type != "done" {
		t.Fatalf("replayed events = %+v, want a terminal done", replay)
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := serveclient.MetricValue(m, "serve_jobs_succeeded_total"); !ok || v != 1 {
		t.Fatalf("serve_jobs_succeeded_total = %g (ok=%v), want 1", v, ok)
	}
	if v, ok := serveclient.MetricValue(m, "serve_steps_total"); !ok || v != 3 {
		t.Fatalf("serve_steps_total = %g (ok=%v), want 3", v, ok)
	}
	if !strings.Contains(m, "serve_step_seconds_bucket{strategy=\"islands-of-cores\"") {
		t.Fatal("metrics exposition lacks the per-strategy step histogram")
	}
}

// TestHTTPQueueFullIs429 asserts the admission-control wire contract: 429
// plus a Retry-After hint.
func TestHTTPQueueFullIs429(t *testing.T) {
	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 1, QueueDepth: 1, RetryAfter: 3 * time.Second,
		EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	defer srv.Close()
	defer close(gate)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := serveclient.New(hs.URL)
	ctx := context.Background()

	running, err := client.Submit(ctx, smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := srv.Job(running.ID)
	waitState(t, j, serve.StateRunning)
	if _, err := client.Submit(ctx, smallSpec(1)); err != nil {
		t.Fatal(err)
	}

	_, err = client.Submit(ctx, smallSpec(1))
	var apiErr *serveclient.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 429 {
		t.Fatalf("submit into full queue = %v, want 429", err)
	}
	if !apiErr.IsRetryable() || apiErr.RetryAfter != 3*time.Second {
		t.Fatalf("rejection = %+v, want retryable with 3s hint", apiErr)
	}
}

// TestNoGoroutineLeak runs jobs through the full lifecycle (success, failure,
// cancel, drain) and asserts the server unwinds to the baseline goroutine
// count — the acceptance criterion's leak check.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	gate := make(chan struct{})
	srv := serve.NewServer(serve.Options{
		Slots: 2, EngineFactory: gatedFactory(gate), Logf: t.Logf,
	})
	j1, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := srv.Submit(smallSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, serve.StateRunning)
	srv.Cancel(j2, "canceled by test")
	close(gate)
	waitTerminal(t, j1)
	waitTerminal(t, j2)
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after drain — leak", before, runtime.NumGoroutine())
}
