package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"islands/internal/serve"
)

// postSpec submits a spec over HTTP and returns the response code and body.
func postSpec(t *testing.T, url string, spec serve.Spec) (int, string) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// TestGridTooLargeWireContract pins the 413 path: a resident job over
// MaxGridCells is rejected with a hint naming the streamed job class, and a
// grid no class accepts is rejected outright.
func TestGridTooLargeWireContract(t *testing.T) {
	srv := serve.NewServer(serve.Options{Slots: 1, SpillDir: t.TempDir()})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// 2048*2048*1024 = 2^32 cells: over the resident 2^31, under the
	// streamed 2^40.
	code, body := postSpec(t, hs.URL, serve.Spec{Grid: "2048x2048x1024", Steps: 1})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("resident over-limit grid: got %d, want 413 (body %s)", code, body)
	}
	if !strings.Contains(body, `\"streamed\": true`) && !strings.Contains(body, `"streamed": true`) {
		t.Fatalf("413 body does not name the streamed job class: %s", body)
	}

	// 2^41 cells: over even the streamed bound.
	code, body = postSpec(t, hs.URL, serve.Spec{Grid: "2097152x1048576x1", Steps: 1, Streamed: true})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("streamed over-limit grid: got %d, want 413 (body %s)", code, body)
	}
	if !strings.Contains(body, "streamed limit") {
		t.Fatalf("streamed 413 body does not name its limit: %s", body)
	}

	// Spec contradictions are 400s, not 413s.
	for _, spec := range []serve.Spec{
		{Grid: "32x16x8", Steps: 4, Streamed: true, KSteps: 2},
		{Grid: "32x16x8", Steps: 4, MemoryBudgetMB: 64},
		{Grid: "32x16x8", Steps: 4, StreamID: "x"},
		{Grid: "32x16x8", Steps: 4, Streamed: true, StreamID: "../escape"},
	} {
		if code, body := postSpec(t, hs.URL, spec); code != http.StatusBadRequest {
			t.Fatalf("spec %+v: got %d, want 400 (body %s)", spec, code, body)
		}
	}
}

// streamTestSpec is a domain that comfortably exceeds a 1 MiB budget (the
// residency picker must cut at least 4 tiles) yet runs quickly resident.
func streamTestSpec(steps int) serve.Spec {
	return serve.Spec{Grid: "128x16x16", Steps: steps, Strategy: "original", Processors: 1}
}

// TestStreamedJobMatchesResident runs the same spec resident and streamed
// under a 1 MiB budget and requires bit-identical checksums plus a populated
// stream report — the serving-layer face of the streamed-vs-resident
// identity property.
func TestStreamedJobMatchesResident(t *testing.T) {
	spill := t.TempDir()
	srv := serve.NewServer(serve.Options{Slots: 1, SpillDir: spill})
	defer srv.Close()

	resident, err := srv.Submit(streamTestSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, resident); st != serve.StateSucceeded {
		t.Fatalf("resident job: %s (%s)", st, srv.Status(resident).Error)
	}

	spec := streamTestSpec(4)
	spec.Streamed = true
	spec.MemoryBudgetMB = 1
	streamed, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, streamed); st != serve.StateSucceeded {
		t.Fatalf("streamed job: %s (%s)", st, srv.Status(streamed).Error)
	}

	rr, sr := srv.Status(resident).Result, srv.Status(streamed).Result
	if rr == nil || sr == nil {
		t.Fatalf("missing results: resident %v streamed %v", rr, sr)
	}
	if rr.Checksums != sr.Checksums {
		t.Fatalf("streamed checksums diverge from resident:\n  resident %+v\n  streamed %+v", rr.Checksums, sr.Checksums)
	}
	rep := sr.Stream
	if rep == nil {
		t.Fatal("streamed result has no stream report")
	}
	if rep.Tiles < 4 {
		t.Fatalf("1 MiB budget cut only %d tiles (report %+v)", rep.Tiles, rep)
	}
	if rep.BytesRead <= 0 || rep.BytesWritten <= 0 || rep.TilesDone <= 0 {
		t.Fatalf("stream report missing traffic accounting: %+v", rep)
	}
	if rep.OverlapEfficiency < 0 || rep.OverlapEfficiency > 1 {
		t.Fatalf("overlap efficiency %v out of [0,1]", rep.OverlapEfficiency)
	}
	if sr.KSteps != rep.K {
		t.Fatalf("result ksteps %d does not echo the residency k %d", sr.KSteps, rep.K)
	}
	if rr.Stream != nil {
		t.Fatalf("resident result carries a stream report: %+v", rr.Stream)
	}
	if got := srv.Metrics().StreamJobs.Load(); got != 1 {
		t.Fatalf("StreamJobs = %d, want 1", got)
	}
	if got := srv.Metrics().StreamTiles.Load(); got < 4 {
		t.Fatalf("StreamTiles = %d, want >= 4", got)
	}
	if bw := srv.Stats(); bw.Running != 0 { // sanity: nothing stuck
		t.Fatalf("jobs still running: %+v", bw)
	}

	// Anonymous stores are removed when the job's engine closes.
	entries, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "job-") {
			t.Fatalf("anonymous spill store %s not removed", e.Name())
		}
	}
}

// TestStreamedResumeAfterCancel kills a named streamed job mid-run and
// resubmits it: the second job resumes the store's checkpoint and lands on
// exactly the checksums of an uninterrupted run.
func TestStreamedResumeAfterCancel(t *testing.T) {
	spill := t.TempDir()
	srv := serve.NewServer(serve.Options{Slots: 1, SpillDir: spill})
	defer srv.Close()

	// The uninterrupted baseline, under its own store.
	base := streamTestSpec(6)
	base.Streamed = true
	base.MemoryBudgetMB = 1
	base.StreamID = "baseline"
	bj, err := srv.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, bj); st != serve.StateSucceeded {
		t.Fatalf("baseline job: %s (%s)", st, srv.Status(bj).Error)
	}
	want := srv.Status(bj).Result.Checksums

	// The victim: cancel once at least one tile residency committed.
	spec := base
	spec.StreamID = "victim"
	tilesBefore := srv.Metrics().StreamTiles.Load()
	j1, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for srv.Metrics().StreamTiles.Load() == tilesBefore && !j1.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("no tile completed before the cancel deadline")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Cancel(j1, "test kill")
	st1 := waitTerminal(t, j1)

	// Resubmit under the same stream_id: the job resumes the checkpoint
	// (or, if the cancel raced completion, replays a done store) and must
	// land on the baseline checksums.
	j2, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j2); st != serve.StateSucceeded {
		t.Fatalf("resumed job: %s (%s) after victim ended %s", st, srv.Status(j2).Error, st1)
	}
	res := srv.Status(j2).Result
	if res.Checksums != want {
		t.Fatalf("resumed checksums diverge from uninterrupted run:\n  want %+v\n  got  %+v", want, res.Checksums)
	}
	if res.Stream == nil || res.Stream.StoreDir == "" {
		t.Fatalf("named streamed job missing store dir in report: %+v", res.Stream)
	}
	if st1 == serve.StateCanceled && res.Stream.ResumedSteps == 0 && res.Stream.TilesDone == 0 {
		t.Fatalf("resumed job did no work and resumed no steps: %+v", res.Stream)
	}
}
