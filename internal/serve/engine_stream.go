package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"islands/internal/exec"
	"islands/internal/stream"
	"islands/internal/tune"
)

// This file is the serving side of out-of-core tile streaming
// (docs/STREAMING.md): a streamed job's engine is not a whole-domain runner
// but a stream.Streamer driving disk-backed tiles through resident tile
// engines. The residency — tile width times temporal factor k — is chosen by
// tune.PickResidency under the job's memory budget, priced with the server's
// live disk-bandwidth estimate; named stores (spec stream_id) survive the
// job and resume from their checkpoint on resubmission.

// TileProgress is a streamed job's tile-granular progress report.
type TileProgress struct {
	// Sweep/Sweeps and Tile/Tiles locate the completed residency.
	Sweep, Sweeps int
	Tile, Tiles   int
	// StepsDone counts globally durable steps (whole sweeps only).
	StepsDone int
}

// StreamReport is the out-of-core summary embedded in a streamed job's
// result.
type StreamReport struct {
	// Residency names the picked configuration advisor-style ("resident",
	// "stream w12k2", or "checkpointed w12k2" when a named store's
	// recorded residency overrode the picker).
	Residency string `json:"residency"`
	// TilePlanes and K are the residency: owned i-planes per tile,
	// advanced K steps per visit.
	TilePlanes int `json:"tile_planes"`
	K          int `json:"k"`
	// Tiles and Sweeps are the plan shape; TilesDone counts residencies
	// this job completed (fewer than Tiles*Sweeps after a resume).
	Tiles     int `json:"tiles"`
	Sweeps    int `json:"sweeps"`
	TilesDone int `json:"tiles_done"`
	// BudgetMB is the effective memory budget the residency satisfies.
	BudgetMB int `json:"budget_mb"`
	// BytesRead/BytesWritten is this job's disk traffic.
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// OverlapEfficiency is the measured fraction of wall time not lost to
	// I/O stalls (1 = streaming at in-memory speed); DiskBWBytes the
	// observed store throughput.
	OverlapEfficiency float64 `json:"overlap_efficiency"`
	DiskBWBytes       float64 `json:"disk_bw_bytes,omitempty"`
	Prefetch          bool    `json:"prefetch"`
	Mmap              bool    `json:"mmap"`
	// ResumedSteps counts steps already durable when the store opened
	// (nonzero only when a named store resumed).
	ResumedSteps int `json:"resumed_steps,omitempty"`
	// StoreDir is the durable store's directory (named stores only).
	StoreDir string `json:"store_dir,omitempty"`
}

// StreamEngine is the optional interface streamed engines add on top of
// Engine: the dispatch loop advances whole sweeps until Done and reads
// tile-granular progress through the sink.
type StreamEngine interface {
	Engine
	// Done reports that every sweep is durable (Step becomes a no-op).
	Done() bool
	// StepsDone counts globally durable steps, resumed ones included.
	StepsDone() int
	// SetProgress installs the tile-progress sink (safe mid-run).
	SetProgress(func(TileProgress))
	// Report summarizes the run for the job result (nil before Reset).
	Report() *StreamReport
}

// streamEngine adapts a stream.Streamer to the Engine contract. It is never
// returned to the pool cache (the store's checkpoint, not a warm engine, is
// what makes repeat jobs cheap), so Close always tears the tile engines down
// and removes anonymous stores.
type streamEngine struct {
	srv *Server
	ns  NormSpec

	dir   string
	named bool

	streamer *stream.Streamer
	report   *StreamReport

	mu   sync.Mutex
	sink func(TileProgress)
}

// newStreamEngine builds the engine shell; the store and streamer are
// created in Reset (the Engine contract's per-job initialization point).
func newStreamEngine(srv *Server, ns NormSpec) (Engine, error) {
	root := srv.spillDir()
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("serve: stream spill root: %w", err)
	}
	e := &streamEngine{srv: srv, ns: ns, named: ns.StreamID != ""}
	if e.named {
		e.dir = filepath.Join(root, "stream-"+ns.StreamID)
	} else {
		dir, err := os.MkdirTemp(root, "job-")
		if err != nil {
			return nil, fmt.Errorf("serve: stream spill dir: %w", err)
		}
		e.dir = dir
	}
	return e, nil
}

// budgetBytes resolves the job's effective memory budget.
func (e *streamEngine) budgetMB() int {
	if e.ns.MemoryBudgetMB > 0 {
		return e.ns.MemoryBudgetMB
	}
	return e.srv.streamBudgetMB()
}

// pickResidency chooses tile width and k: a named store's checkpoint wins
// (resume validation rejects changed geometry), otherwise the cost model
// picks under the budget using the server's live disk-bandwidth estimate.
func (e *streamEngine) pickResidency(cfg exec.Config) (tilePlanes, k int, label string, err error) {
	if e.named {
		if tp, ck, ok := stream.StoredResidency(e.dir); ok {
			return tp, ck, fmt.Sprintf("checkpointed w%dk%d", tp, ck), nil
		}
	}
	prog, err := classProgram(classOf(e.ns))
	if err != nil {
		return 0, 0, "", err
	}
	knobs := tune.KnobsOf(cfg, e.ns.Domain)
	budget := int64(e.budgetMB()) << 20
	r, err := tune.PickResidency(cfg.Machine, prog, classOf(e.ns), knobs, e.ns.Steps, budget, e.srv.diskBWEstimate())
	if err != nil {
		return 0, 0, "", fmt.Errorf("serve: no streaming residency under %d MiB: %w", e.budgetMB(), err)
	}
	if r.Resident {
		// The whole domain fits the budget: run a degenerate single-tile
		// stream (k = the whole run) rather than a distinct code path.
		return 0, e.ns.Steps, r.Label, nil
	}
	return r.TilePlanes, r.K, r.Label, nil
}

// Reset opens (or resumes) the spill store and prepares the streamer.
func (e *streamEngine) Reset() error {
	if e.streamer != nil {
		// Engines are never cache-reused, so a second Reset means the
		// dispatch retried; start the streamer over from the store.
		_ = e.streamer.Close()
		e.streamer = nil
	}
	cfg, err := e.ns.ExecConfig()
	if err != nil {
		return err
	}
	tilePlanes, k, label, err := e.pickResidency(cfg)
	if err != nil {
		return err
	}
	cfg.Steps = e.ns.Steps
	cfg.KSteps = k
	st, err := stream.New(stream.Options{
		Dir:        e.dir,
		Exec:       cfg,
		Domain:     e.ns.Domain,
		Solver:     e.ns.Solver,
		IORD:       e.ns.IORD,
		Unlimited:  e.ns.Unlimited,
		TilePlanes: tilePlanes,
		Resume:     e.named,
		Progress: func(p stream.Progress) {
			e.mu.Lock()
			sink := e.sink
			e.mu.Unlock()
			if sink != nil {
				sink(TileProgress{
					Sweep: p.Sweep, Sweeps: p.Sweeps,
					Tile: p.Tile, Tiles: p.Tiles,
					StepsDone: p.StepsDone,
				})
			}
		},
	})
	if err != nil {
		return err
	}
	e.streamer = st
	plan := st.Plan()
	e.report = &StreamReport{
		Residency:    label,
		TilePlanes:   plan.TilePlanes,
		K:            plan.K,
		Tiles:        len(plan.Tiles),
		Sweeps:       plan.Sweeps,
		BudgetMB:     e.budgetMB(),
		ResumedSteps: st.ResumedSteps(),
	}
	if e.named {
		e.report.StoreDir = e.dir
	}
	return nil
}

// Step advances one whole sweep (every tile one residency); a no-op once
// Done.
func (e *streamEngine) Step() error {
	if e.streamer.Done() {
		return nil
	}
	return e.streamer.RunSweep()
}

// Done reports whether every sweep is durable.
func (e *streamEngine) Done() bool { return e.streamer.Done() }

// StepsDone counts globally durable steps (resumed ones included).
func (e *streamEngine) StepsDone() int { return e.streamer.StepsDone() }

// Abort cancels the in-flight sweep through the streamer's abort path.
func (e *streamEngine) Abort(reason string) {
	if e.streamer != nil {
		e.streamer.Abort(fmt.Sprintf("serve: %s", reason))
	}
}

// SetProgress installs the tile-progress sink.
func (e *streamEngine) SetProgress(f func(TileProgress)) {
	e.mu.Lock()
	e.sink = f
	e.mu.Unlock()
}

// Report finalizes and returns the stream summary.
func (e *streamEngine) Report() *StreamReport {
	if e.report == nil {
		return nil
	}
	st := e.streamer.Stats()
	e.report.TilesDone = st.TilesDone
	e.report.BytesRead = st.BytesRead
	e.report.BytesWritten = st.BytesWritten
	e.report.OverlapEfficiency = st.OverlapEfficiency()
	e.report.DiskBWBytes = st.DiskBW()
	e.report.Prefetch = st.Prefetch
	e.report.Mmap = st.Mmap
	return e.report
}

// Checksums summarizes the final field from the store. The sum is computed
// with the same compensated accumulator and visitation order as a resident
// field, so a streamed job's checksums are bit-identical to the resident
// run's.
func (e *streamEngine) Checksums() Checksums {
	ck, err := e.streamer.Checksums()
	if err != nil {
		return Checksums{}
	}
	var drift float64
	if ck.MassIn != 0 {
		drift = (ck.Sum - ck.MassIn) / ck.MassIn
	}
	return Checksums{Sum: ck.Sum, Min: ck.Min, Max: ck.Max, MassDrift: drift}
}

// SetProfiling is a no-op: streamed jobs report overlap efficiency and disk
// throughput through StreamReport instead of the per-phase profile.
func (e *streamEngine) SetProfiling(bool) {}

// Profile returns nil (see SetProfiling).
func (e *streamEngine) Profile() *exec.Profile { return nil }

// Info reports the residency k as the effective temporal blocking.
func (e *streamEngine) Info() EngineInfo {
	if e.streamer == nil {
		return EngineInfo{}
	}
	return EngineInfo{KSteps: e.streamer.Plan().K}
}

// Close tears the tile engines down; anonymous stores are removed, named
// ones kept on disk for resumption.
func (e *streamEngine) Close() {
	if e.streamer != nil {
		if e.named {
			_ = e.streamer.Close()
		} else {
			_ = e.streamer.Remove()
		}
		e.streamer = nil
	}
	if !e.named {
		_ = os.RemoveAll(e.dir)
	}
}
