package serve

import (
	"errors"
	"testing"
	"time"
)

func qjob(t *testing.T, id string) *Job {
	t.Helper()
	spec := Spec{Grid: "16x8x4", Steps: 1, Processors: 1}
	ns, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return newJob(id, spec, ns, time.Now())
}

func TestQueueFIFOAndPositions(t *testing.T) {
	q := newQueue(3, time.Second)
	a, b, c := qjob(t, "a"), qjob(t, "b"), qjob(t, "c")
	for _, j := range []*Job{a, b, c} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.position(a); got != 1 {
		t.Fatalf("position(a) = %d, want 1", got)
	}
	if got := q.position(c); got != 3 {
		t.Fatalf("position(c) = %d, want 3", got)
	}
	if got := q.depth(); got != 3 {
		t.Fatalf("depth = %d, want 3", got)
	}

	j, skipped := q.pop()
	if j != a || len(skipped) != 0 {
		t.Fatalf("pop = %v (skipped %d), want job a", j, len(skipped))
	}
	if got := q.position(c); got != 2 {
		t.Fatalf("position(c) after pop = %d, want 2", got)
	}
}

func TestQueueFullRejection(t *testing.T) {
	q := newQueue(2, 3*time.Second)
	if err := q.push(qjob(t, "a")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(t, "b")); err != nil {
		t.Fatal(err)
	}
	err := q.push(qjob(t, "c"))
	var full *ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("push into full queue = %v, want ErrQueueFull", err)
	}
	if full.Depth != 2 || full.RetryAfter != 3*time.Second {
		t.Fatalf("ErrQueueFull = %+v, want depth 2 retry 3s", full)
	}
}

func TestQueuePopSkipsCanceled(t *testing.T) {
	q := newQueue(4, time.Second)
	a, b := qjob(t, "a"), qjob(t, "b")
	if err := q.push(a); err != nil {
		t.Fatal(err)
	}
	if err := q.push(b); err != nil {
		t.Fatal(err)
	}
	a.Cancel("test")
	j, skipped := q.pop()
	if j != b {
		t.Fatalf("pop = %v, want job b", j)
	}
	if len(skipped) != 1 || skipped[0] != a {
		t.Fatalf("skipped = %v, want [a]", skipped)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(4, time.Second)
	a, b := qjob(t, "a"), qjob(t, "b")
	if err := q.push(a); err != nil {
		t.Fatal(err)
	}
	if err := q.push(b); err != nil {
		t.Fatal(err)
	}
	if !q.remove(a) {
		t.Fatal("remove(a) = false, want true")
	}
	if q.remove(a) {
		t.Fatal("second remove(a) = true, want false")
	}
	if got := q.depth(); got != 1 {
		t.Fatalf("depth after remove = %d, want 1", got)
	}
}

func TestQueueCloseWakesPop(t *testing.T) {
	q := newQueue(2, time.Second)
	done := make(chan *Job, 1)
	go func() {
		j, _ := q.pop()
		done <- j
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case j := <-done:
		if j != nil {
			t.Fatalf("pop after close = %v, want nil", j)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not return after close")
	}
}

func TestQueuePushAfterCloseIsDraining(t *testing.T) {
	q := newQueue(2, time.Second)
	q.close()
	if err := q.push(qjob(t, "a")); !errors.Is(err, ErrDraining) {
		t.Fatalf("push after close = %v, want ErrDraining", err)
	}
}
