package serve

import (
	"fmt"

	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/solver"
)

// Engine is one pre-warmed, reusable execution slot: a compiled runner (with
// its schedule, environments and halo buffers) plus the state it advances.
// The pool leases engines to jobs; a healthy engine is returned to the cache
// afterwards so the next job with the same spec key skips the NewRunner
// compile cost. Engines are not safe for concurrent use — the pool leases
// each to one job at a time.
type Engine interface {
	// Reset loads a fresh job's initial conditions into the engine's
	// state. It is called once before the first Step of every job.
	Reset() error
	// Step advances the simulation by one time step. An error poisons the
	// engine: the job fails (or was canceled) and the pool discards the
	// engine instead of caching it.
	Step() error
	// Abort cancels an in-flight Step from another goroutine through the
	// schedule's barrier-abort path; the pending or next Step returns an
	// error carrying the reason. The engine is poisoned afterwards.
	Abort(reason string)
	// Checksums summarizes the current solution field.
	Checksums() Checksums
	// SetProfiling toggles per-phase runtime profiling for later Steps.
	SetProfiling(on bool)
	// Profile returns the aggregated runtime profile (nil when off).
	Profile() *exec.Profile
	// Info reports compiled-schedule facts the job result surfaces: the
	// effective temporal-blocking factor and the fallback reason when a
	// requested k was dropped to 1.
	Info() EngineInfo
	// Close releases the engine's work teams.
	Close()
}

// EngineInfo is the compiled schedule's effective temporal blocking: KSteps
// as actually compiled, plus the executor's reason when a requested factor
// fell back to 1 — what the mpdata-load silent-fallback gate audits.
type EngineInfo struct {
	KSteps        int    `json:"ksteps"`
	KStepFallback string `json:"kstep_fallback,omitempty"`
}

// EngineFactory builds an engine for a normalized spec. The server's default
// factory compiles the spec's catalog solver; tests substitute deterministic
// or failure-injecting engines.
type EngineFactory func(n NormSpec) (Engine, error)

// Checksums summarizes a solution field so clients can verify runs cheaply.
type Checksums struct {
	// Sum, Min and Max are taken over the solver's final feedback field
	// (psi for mpdata).
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// MassDrift is (Sum - initial Sum) / initial Sum — the conservation
	// invariant of MPDATA's donor-cell formulation. Reported for every
	// solver, but a physical invariant only where the scheme conserves the
	// field's sum.
	MassDrift float64 `json:"mass_drift"`
}

// solverEngine is the production engine: a catalog solver's state plus a
// runner compiled for one dispatch unit per Step. No solver-specific code —
// the catalog entry supplies the program, the state, the problem fill and
// the feedback field the checksums summarize.
type solverEngine struct {
	ns     NormSpec
	entry  *solver.Entry
	state  *solver.State
	out    *grid.Field
	runner *exec.Runner
	massIn float64
	synced bool
}

// CheckKSteps verifies a temporal-blocking request would actually compile at
// the requested k for the spec's solver program — the shared feasibility
// gate behind both the server's spec validation and mpdata-sim -ksteps, so
// both reject an infeasible k with the same executor error text.
func (n NormSpec) CheckKSteps() error {
	if n.KSteps <= 1 {
		return nil
	}
	ec, err := n.ExecConfig()
	if err != nil {
		return err
	}
	entry, err := n.SolverEntry()
	if err != nil {
		return err
	}
	prog, err := entry.NewProgram(n.SolverOptions())
	if err != nil {
		return err
	}
	return exec.CheckKSteps(ec, &prog.Program, n.Domain)
}

// NewSolverEngine compiles the spec's catalog solver — the pool's default
// factory. The compile cost this pays (schedule, environments, halo strips)
// is exactly what the cache amortizes across repeat jobs.
func NewSolverEngine(n NormSpec) (Engine, error) {
	ec, err := n.ExecConfig()
	if err != nil {
		return nil, err
	}
	entry, err := n.SolverEntry()
	if err != nil {
		return nil, err
	}
	prog, err := entry.NewProgram(n.SolverOptions())
	if err != nil {
		return nil, err
	}
	state, err := entry.NewState(n.Domain)
	if err != nil {
		return nil, err
	}
	runner, err := exec.NewRunner(ec, prog, state.Inputs, state.Feedback)
	if err != nil {
		return nil, err
	}
	return &solverEngine{ns: n, entry: entry, state: state, out: state.Output(), runner: runner}, nil
}

// Reset writes the solver's standard problem (for mpdata: the Gaussian blob
// in solid-body rotation mpdata-sim uses) into the shared fields and
// re-imports them into the islands' private halo buffers. The same fill is
// what streamed jobs seed their spill stores with, so a streamed job's
// checksums are bit-comparable to a resident run.
func (e *solverEngine) Reset() error {
	e.entry.SetProblem(e.state)
	// The swap+halo feedback mode keeps private feedback buffers per
	// island; re-import the freshly written shared field (no-op otherwise).
	e.runner.ReloadFeedback()
	e.massIn = e.out.Sum()
	e.synced = true
	return nil
}

// Step advances one time step (one alloc-free dispatch of the compiled
// schedule).
func (e *solverEngine) Step() error {
	e.synced = false
	return e.runner.Run()
}

// Abort cancels an in-flight step through the barrier-abort path.
func (e *solverEngine) Abort(reason string) {
	e.runner.Abort(fmt.Sprintf("serve: %s", reason))
}

// Checksums materializes the feedback field (swap+halo mode keeps it in
// private buffers during the step loop) and summarizes it.
func (e *solverEngine) Checksums() Checksums {
	if !e.synced {
		e.runner.SyncFeedback()
		e.synced = true
	}
	sum := e.out.Sum()
	var drift float64
	if e.massIn != 0 {
		drift = (sum - e.massIn) / e.massIn
	}
	return Checksums{
		Sum:       sum,
		Min:       e.out.Min(),
		Max:       e.out.Max(),
		MassDrift: drift,
	}
}

// SetProfiling toggles the runner's per-phase profiler.
func (e *solverEngine) SetProfiling(on bool) {
	if on {
		e.runner.EnableProfile(false)
	} else {
		e.runner.DisableProfile()
	}
}

// Profile returns the runner's aggregated profile (nil when off).
func (e *solverEngine) Profile() *exec.Profile { return e.runner.Profile() }

// Info reports the compiled schedule's effective temporal blocking.
func (e *solverEngine) Info() EngineInfo {
	sch := e.runner.Schedule()
	return EngineInfo{KSteps: sch.KSteps(), KStepFallback: sch.KStepFallbackReason()}
}

// Close releases the runner's work teams.
func (e *solverEngine) Close() { e.runner.Close() }
