package serve

import (
	"islands/internal/solver"
	"islands/internal/stencil"
	"islands/internal/tune"
)

// This file wires the autotuner (internal/tune) into the serving path. With
// a tuner configured, every non-pinned job is mapped to the best-known knob
// combination for its problem class before the pool lease: the engine cache
// then stores one engine under the canonical tuned key instead of aliasing
// the same physical configuration under requested and tuned keys. Completed
// jobs report their measured step cost (and, when profiled, imbalance) back
// into the ranking, and a bounded epsilon-greedy exploration keeps the
// ranking honest as the host drifts from the model.

// TunerOptions configures the server-side autotuner (cmd/mpdata-serve
// -tune). Zero values pick the serving defaults.
type TunerOptions struct {
	// Seed makes tuning decisions reproducible.
	Seed int64
	// TopM bounds the candidates eligible for tuning/exploration (0 = 8).
	TopM int
	// Epsilon is the exploration probability per decision (0 = 0.1; pass
	// a negative value to disable exploration entirely).
	Epsilon float64
	// ExploreFrac caps the fraction of served steps spent exploring
	// (0 = 0.1).
	ExploreFrac float64
}

// NewTuner builds the serving tuner: candidates seeded from the machine
// model over each class's solver program, refined online by served jobs.
func NewTuner(o TunerOptions) (*tune.Tuner, error) {
	eps := o.Epsilon
	switch {
	case eps == 0:
		eps = 0.1
	case eps < 0:
		eps = 0
	}
	return tune.New(tune.Options{
		Seed:        o.Seed,
		TopM:        o.TopM,
		Epsilon:     eps,
		ExploreFrac: o.ExploreFrac,
		Seeder:      tune.NewModelSeeder(classProgram),
	})
}

// classProgram builds the stage program of a tuner class by dispatching on
// the class's catalog solver ("" reads as the default entry, so classes from
// before the Solver axis keep working).
func classProgram(c tune.Class) (*stencil.Program, error) {
	entry, err := solver.Lookup(c.Solver)
	if err != nil {
		return nil, err
	}
	prog, err := entry.NewProgram(solver.Options{IORD: c.IORD, Unlimited: c.Unlimited})
	if err != nil {
		return nil, err
	}
	return &prog.Program, nil
}

// classOf maps a normalized spec to its tuner problem class — the fields a
// tuned configuration must preserve. The solver is a class axis: each
// catalog entry has its own stage graph and cost profile, so rankings never
// mix across solvers.
func classOf(ns NormSpec) tune.Class {
	return tune.Class{
		Solver:              ns.Solver,
		Domain:              ns.Domain,
		Processors:          ns.Processors,
		Variant:             ns.Variant,
		Boundary:            ns.Boundary,
		IORD:                ns.IORD,
		Unlimited:           ns.Unlimited,
		DisableHaloExchange: ns.DisableHaloExchange,
	}
}

// requestedKnobs extracts the spec's tunable knobs in canonical form (auto
// BlockI resolved to its explicit width). ok is false when the machine
// cannot be built — the caller then skips tuning.
func requestedKnobs(ns NormSpec) (tune.Knobs, bool) {
	ec, err := ns.ExecConfig()
	if err != nil {
		return tune.Knobs{}, false
	}
	return tune.KnobsOf(ec, ns.Domain), true
}

// applyKnobs re-points a normalized spec at tuned knobs. The result's Key()
// is the canonical tuned cache key: two requests whose knobs tune to the
// same combination — or one spec requested with BlockI 0 and another with
// the same width spelled explicitly — lease the same cached engine.
func applyKnobs(ns NormSpec, k tune.Knobs) NormSpec {
	ns.Strategy = k.Strategy
	ns.CoreIslands = k.CoreIslands
	ns.BlockI = k.BlockI
	ns.KSteps = max(k.KSteps, 1)
	ns.DisableFusion = k.DisableFusion
	ns.Placement = k.Placement
	return ns
}
