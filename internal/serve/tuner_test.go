package serve

import (
	"sync/atomic"
	"testing"
	"time"

	"islands/internal/exec"
	"islands/internal/tune"
)

// tunerSpec is the standard tuner-test job: small islands problem, 4 steps
// so k in {1,2,4} stays feasible.
func tunerSpec() Spec {
	return Spec{Grid: "48x24x8", Steps: 4, Processors: 2, Strategy: "islands"}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.State())
	}
}

// TestTunedKeyCanonicalization is the alias-path unit test: a spec with the
// automatic BlockI and one spelling the same resolved width explicitly must
// map to one canonical cache key after tuning normalization — the same
// physical engine is never cached twice under requested and tuned keys.
func TestTunedKeyCanonicalization(t *testing.T) {
	auto, err := tunerSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	kn, ok := requestedKnobs(auto)
	if !ok {
		t.Fatal("requestedKnobs failed for a valid spec")
	}
	if kn.BlockI <= 0 {
		t.Fatalf("canonical knobs kept automatic BlockI: %+v", kn)
	}

	explicitSpec := tunerSpec()
	explicitSpec.BlockI = kn.BlockI
	explicit, err := explicitSpec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if auto.Key() == explicit.Key() {
		t.Fatal("raw keys should differ (BlockI 0 vs explicit) for this test to mean anything")
	}
	ka := applyKnobs(auto, kn)
	kne, ok := requestedKnobs(explicit)
	if !ok {
		t.Fatal("requestedKnobs failed for the explicit spec")
	}
	ke := applyKnobs(explicit, kne)
	if ka.Key() != ke.Key() {
		t.Fatalf("canonicalized keys alias:\n auto     %+v\n explicit %+v", ka.Key(), ke.Key())
	}
}

// TestServerTunerSharesEngineAcrossAliases runs the alias path end to end:
// with a tuner, an auto-BlockI request and an explicit-BlockI request in the
// same problem class lease the same cached engine (one compile, then a hit),
// and results carry the requested-vs-tuned labels.
func TestServerTunerSharesEngineAcrossAliases(t *testing.T) {
	tn, err := NewTuner(TunerOptions{Seed: 1, Epsilon: -1})
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	srv := NewServer(Options{Slots: 1, EngineFactory: fakeFactory(&builds), Tuner: tn})
	defer srv.Close()

	auto, err := tunerSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	kn, ok := requestedKnobs(auto)
	if !ok {
		t.Fatal("requestedKnobs failed")
	}
	explicitSpec := tunerSpec()
	explicitSpec.BlockI = kn.BlockI

	j1, err := srv.Submit(tunerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	j2, err := srv.Submit(explicitSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)

	for _, j := range []*Job{j1, j2} {
		st := j.status()
		if st.State != StateSucceeded {
			t.Fatalf("job %s: %s (%s)", j.ID, st.State, st.Error)
		}
		r := st.Result
		if r.RequestedConfig == "" || r.TunedConfig == "" || r.TuneReason == "" {
			t.Fatalf("job %s result missing tuning fields: %+v", j.ID, r)
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("factory ran %d times, want 1 (aliased specs must share one engine)", n)
	}
	if r := j2.status().Result; !r.CacheHit {
		t.Fatal("second aliased job missed the engine cache")
	}
	if c := tn.Counters(); c.Decisions != 2 || c.Classes != 1 {
		t.Fatalf("tuner counters %+v, want 2 decisions in 1 class", c)
	}
}

// TestServerTunerPinPassthrough: a pinned job runs exactly as requested —
// no tuning decision, no tuned labels, and the pinned counter moves.
func TestServerTunerPinPassthrough(t *testing.T) {
	tn, err := NewTuner(TunerOptions{Seed: 1, Epsilon: -1})
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	srv := NewServer(Options{Slots: 1, EngineFactory: fakeFactory(&builds), Tuner: tn})
	defer srv.Close()

	spec := tunerSpec()
	spec.Pin = true
	spec.Strategy = "original"
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	st := j.status()
	if st.State != StateSucceeded {
		t.Fatalf("pinned job: %s (%s)", st.State, st.Error)
	}
	r := st.Result
	if r.TunedConfig != "" || r.Tuned || r.TuneReason != "" {
		t.Fatalf("pinned job was tuned: %+v", r)
	}
	if r.Strategy != "original" {
		t.Fatalf("pinned job ran %q, want the requested original strategy", r.Strategy)
	}
	if n := srv.Metrics().TunerPinned.Load(); n != 1 {
		t.Fatalf("pinned counter %d, want 1", n)
	}
	if c := tn.Counters(); c.Decisions != 0 {
		t.Fatalf("pinned job consumed a tuning decision: %+v", c)
	}
}

// TestServerTunerNeverWorseThanRequested feeds the tuner measurements that
// make the requested configuration the fastest known and checks the next
// decision serves it unchanged (greedy mode).
func TestServerTunerNeverWorseThanRequested(t *testing.T) {
	tn, err := NewTuner(TunerOptions{Seed: 1, Epsilon: -1})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := tunerSpec().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	req, ok := requestedKnobs(ns)
	if !ok {
		t.Fatal("requestedKnobs failed")
	}
	class := classOf(ns)
	// First decision may substitute the model's favorite; report the
	// requested knobs as dramatically faster than anything modeled.
	d := tn.Decide(class, req, ns.Steps)
	tn.Observe(class, tune.Observation{Knobs: d.Knobs, StepSeconds: 1.0, Steps: ns.Steps})
	tn.Observe(class, tune.Observation{Knobs: req, StepSeconds: 1e-6, Steps: ns.Steps})
	d = tn.Decide(class, req, ns.Steps)
	if d.Knobs != req || d.Tuned {
		t.Fatalf("measured-fastest requested config was displaced: %+v", d)
	}
	// Strategy preserved end to end through spec re-pointing.
	if got := applyKnobs(ns, d.Knobs).Strategy; got != exec.IslandsOfCores {
		t.Fatalf("applyKnobs changed strategy to %v", got)
	}
}
