// Package serveclient is the typed HTTP client of the mpdata-serve API: it
// submits job specs, polls status, streams SSE progress events and scrapes
// the metrics endpoint. cmd/mpdata-load drives a server with it; tests and
// scripts can reuse it for end-to-end checks.
package serveclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"islands/internal/serve"
)

// Client talks to one mpdata-serve instance.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (nil = a client with a 2-minute timeout).
	HTTP *http.Client
}

// New builds a client for a server base URL.
func New(base string) *Client {
	return &Client{
		Base: strings.TrimRight(base, "/"),
		HTTP: &http.Client{Timeout: 2 * time.Minute},
	}
}

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's backoff hint (429/503), if any.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve API %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports whether the request was rejected by admission control
// or drain (the client should back off and retry).
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 2 * time.Minute}
}

// do runs a request and decodes a JSON body (or an error envelope).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		apiErr := &APIError{StatusCode: resp.StatusCode}
		var env struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &env) == nil && env.Error != "" {
			apiErr.Message = env.Error
		} else {
			apiErr.Message = strings.TrimSpace(string(data))
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec serve.Spec) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches a job's status and queue position.
func (c *Client) Status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a finished job's status+result (409 while running).
func (c *Client) Result(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &st)
	return st, err
}

// Cancel requests a job's cancellation.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// Wait polls a job until it reaches a terminal state (or ctx expires).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (serve.JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Events streams the job's SSE progress, invoking fn for every event until
// the stream ends (terminal event), fn returns false, or ctx expires.
func (c *Client) Events(ctx context.Context, id string, fn func(serve.Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	// SSE streams outlive the default request timeout: use a transport
	// without one (the caller bounds the stream through ctx).
	hc := &http.Client{Transport: c.httpClient().Transport}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{StatusCode: resp.StatusCode, Message: "events stream refused"}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("serveclient: bad event payload: %w", err)
		}
		if !fn(ev) {
			return nil
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}

// Healthz probes the health endpoint (nil = serving).
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the replica's load/health snapshot (GET /v1/stats) — the
// cheap JSON probe the fleet router polls for membership and work-stealing
// decisions.
func (c *Client) Stats(ctx context.Context) (serve.ReplicaStats, error) {
	var st serve.ReplicaStats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Metrics fetches the raw text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}

// MetricValue extracts one sample's value from a text exposition (exact
// series name match, labels included), e.g. MetricValue(m,
// "serve_jobs_failed_total"). Returns false when the series is absent.
func MetricValue(exposition, series string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == series {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
