package serveclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"islands/internal/serve"
)

// BackoffPolicy is the shared retry policy for admission-control rejections
// (429 queue-full, 503 draining): capped exponential backoff with full
// jitter, the server's Retry-After hint honored as a floor, and every sleep
// watching the context so a canceled client stops immediately instead of
// spinning against a draining or dead server. cmd/mpdata-load and the fleet
// router (internal/fleet) retry through this one policy, so the whole client
// population desynchronizes the same way and retry storms cannot form.
type BackoffPolicy struct {
	// Initial is the base of the exponential component (0 = 100ms).
	Initial time.Duration
	// Max caps the exponential component (0 = 5s). The hint is added on
	// top, so the worst-case delay is hint + Max.
	Max time.Duration
	// MaxAttempts bounds the total submission attempts, first try included
	// (0 = 8). There is deliberately no unlimited setting: a client that
	// cannot place work after MaxAttempts reports the rejection instead of
	// hammering forever.
	MaxAttempts int
	// OnRetry, when set, observes every scheduled retry (attempt is
	// 0-based) — load drivers count rejections through it.
	OnRetry func(attempt int, delay time.Duration, err error)
	// Rand is the jitter source in [0,1) (nil = math/rand; tests pin it).
	Rand func() float64
}

// withDefaults resolves the zero values to the documented defaults.
func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Initial <= 0 {
		p.Initial = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	return p
}

// Delay computes the attempt-th (0-based) retry delay: the server's
// Retry-After hint as a floor, plus a fully jittered exponential component
// rand * min(Max, Initial*2^attempt). The hint floor keeps the delay honest
// (a server asking for 3s is never retried sooner); the jitter spreads a
// synchronized client cohort across the window instead of letting them
// stampede back in lockstep.
func (p BackoffPolicy) Delay(attempt int, hint time.Duration) time.Duration {
	p = p.withDefaults()
	exp := p.Initial
	for i := 0; i < attempt && exp < p.Max; i++ {
		exp *= 2
	}
	if exp > p.Max {
		exp = p.Max
	}
	if hint < 0 {
		hint = 0
	}
	return hint + time.Duration(p.Rand()*float64(exp))
}

// SleepContext sleeps for d unless the context is done first, returning the
// context's error in that case — the cancellation-aware replacement for the
// bare time.Sleep retry loops used to spin in.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SubmitRetry submits a job spec, retrying admission-control rejections
// (429/503) under the policy. Non-retryable errors (bad spec, transport
// failure) return immediately; a canceled context aborts mid-backoff. When
// every attempt is rejected the last rejection is returned wrapped, so
// errors.As still surfaces the *APIError.
func (c *Client) SubmitRetry(ctx context.Context, spec serve.Spec, policy BackoffPolicy) (serve.JobStatus, error) {
	p := policy.withDefaults()
	var last error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		st, err := c.Submit(ctx, spec)
		if err == nil {
			return st, nil
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || !apiErr.IsRetryable() {
			return st, err
		}
		last = err
		if attempt == p.MaxAttempts-1 {
			break // no point sleeping after the final attempt
		}
		delay := p.Delay(attempt, apiErr.RetryAfter)
		if p.OnRetry != nil {
			p.OnRetry(attempt, delay, err)
		}
		if serr := SleepContext(ctx, delay); serr != nil {
			return serve.JobStatus{}, fmt.Errorf("serveclient: submit canceled during backoff: %w", serr)
		}
	}
	return serve.JobStatus{}, fmt.Errorf("serveclient: submit rejected %d times, giving up: %w", p.MaxAttempts, last)
}
