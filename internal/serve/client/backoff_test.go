package serveclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"islands/internal/serve"
)

func TestDelayHonorsHintFloorAndCap(t *testing.T) {
	// Pin the jitter source to its maximum so Delay is deterministic:
	// hint + min(Max, Initial*2^attempt), modulo the <1.0 jitter factor.
	p := BackoffPolicy{Initial: 100 * time.Millisecond, Max: 800 * time.Millisecond,
		Rand: func() float64 { return 0.999 }}
	hint := 3 * time.Second
	for attempt := 0; attempt < 10; attempt++ {
		d := p.Delay(attempt, hint)
		if d < hint {
			t.Fatalf("attempt %d: delay %s below the server hint %s", attempt, d, hint)
		}
		if d > hint+800*time.Millisecond {
			t.Fatalf("attempt %d: delay %s exceeds hint+Max", attempt, d)
		}
	}
	// Exponential growth before the cap: attempt 2 upper bound is 4x Initial.
	if d := p.Delay(2, 0); d > 400*time.Millisecond {
		t.Fatalf("attempt 2 delay %s exceeds Initial*2^2", d)
	}
	// Full jitter: a zero draw means the delay is exactly the hint.
	p.Rand = func() float64 { return 0 }
	if d := p.Delay(5, hint); d != hint {
		t.Fatalf("zero jitter draw: delay %s, want exactly the hint %s", d, hint)
	}
}

func TestSleepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := SleepContext(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepContext = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("SleepContext did not return promptly on cancellation")
	}
}

// busyThenAccept is a fake replica: the first n submissions are rejected 429
// with a Retry-After hint, later ones are accepted.
func busyThenAccept(n int, hintSecs string) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Retry-After", hintSecs)
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "j00000001", State: serve.StateQueued})
	}))
	return hs, &calls
}

func TestSubmitRetryEventuallyAccepted(t *testing.T) {
	hs, calls := busyThenAccept(2, "0")
	defer hs.Close()
	var retries int
	st, err := New(hs.URL).SubmitRetry(context.Background(), serve.Spec{}, BackoffPolicy{
		Initial: time.Millisecond, Max: 2 * time.Millisecond, MaxAttempts: 5,
		OnRetry: func(int, time.Duration, error) { retries++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j00000001" || calls.Load() != 3 || retries != 2 {
		t.Fatalf("status %+v after %d calls and %d retries, want accepted on call 3", st, calls.Load(), retries)
	}
}

func TestSubmitRetryGivesUpWithAPIError(t *testing.T) {
	hs, calls := busyThenAccept(1000, "0")
	defer hs.Close()
	_, err := New(hs.URL).SubmitRetry(context.Background(), serve.Spec{}, BackoffPolicy{
		Initial: time.Millisecond, Max: 2 * time.Millisecond, MaxAttempts: 3,
	})
	if err == nil {
		t.Fatal("SubmitRetry succeeded against a permanently saturated server")
	}
	// The attempt bound held and the last rejection is still inspectable.
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", calls.Load())
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("giving-up error %v does not wrap the 429 APIError", err)
	}
}

func TestSubmitRetryStopsOnCancel(t *testing.T) {
	// A huge Retry-After hint would park the retry for an hour; cancellation
	// must cut the sleep short — the fix for the old uncancellable spin.
	hs, _ := busyThenAccept(1000, "3600")
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := New(hs.URL).SubmitRetry(ctx, serve.Spec{}, BackoffPolicy{MaxAttempts: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitRetry = %v, want a context.Canceled wrap", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("SubmitRetry kept sleeping after cancellation")
	}
}

func TestSubmitRetryDoesNotRetryPermanentErrors(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "bad spec"})
	}))
	defer hs.Close()
	_, err := New(hs.URL).SubmitRetry(context.Background(), serve.Spec{}, BackoffPolicy{MaxAttempts: 8})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("SubmitRetry = %v, want the 400 surfaced without retries", err)
	}
}
