package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"islands/internal/exec"
	"islands/internal/solver"
)

// stepBuckets are the per-step latency histogram bounds in seconds.
var stepBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// histogram is a fixed-bucket latency histogram (atomic, lock-free record).
type histogram struct {
	counts []atomic.Uint64 // one per bucket + overflow
	sum    atomic.Uint64   // total in nanoseconds
	n      atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(stepBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(stepBuckets, s)
	h.counts[i].Add(1)
	h.sum.Add(uint64(d.Nanoseconds()))
	h.n.Add(1)
}

// Metrics is the server's instrumentation: monotonically increasing counters
// plus per-strategy step-latency histograms. Gauges (queue depth, slot
// occupancy, cache size) are read live from their owners at exposition time.
type Metrics struct {
	Submitted atomic.Uint64 // jobs accepted into the queue
	Rejected  atomic.Uint64 // jobs refused by admission control (429)
	Succeeded atomic.Uint64
	Failed    atomic.Uint64
	Canceled  atomic.Uint64
	StepsRun  atomic.Uint64 // completed time steps across all jobs

	// TunerPinned counts jobs that opted out of autotuning (spec pin);
	// the remaining tuner counters live in the tuner itself and are read
	// at exposition time.
	TunerPinned atomic.Uint64

	// Stream counters cover out-of-core jobs (docs/STREAMING.md):
	// completed streamed jobs, tile residencies, spill-store traffic, and
	// jobs that resumed a named store's checkpoint.
	StreamJobs         atomic.Uint64
	StreamTiles        atomic.Uint64
	StreamBytesRead    atomic.Uint64
	StreamBytesWritten atomic.Uint64
	StreamResumed      atomic.Uint64

	mu    sync.Mutex
	steps map[string]*histogram         // per-strategy step latency
	jobs  map[string]*solverJobCounters // per-solver job outcomes
}

func newMetrics() *Metrics {
	return &Metrics{
		steps: make(map[string]*histogram),
		jobs:  make(map[string]*solverJobCounters),
	}
}

// solverJobCounters is one solver label's job-outcome counters — the labeled
// companions of the unlabeled serve_jobs_* totals (which stay untouched so
// existing scrapers keep parsing them).
type solverJobCounters struct {
	Submitted atomic.Uint64
	Rejected  atomic.Uint64
	Succeeded atomic.Uint64
	Failed    atomic.Uint64
	Canceled  atomic.Uint64
}

// validSolverLabels is the closed set of per-solver label values: the solver
// catalog's entry names. Anything else folds into "other", bounding the
// labeled series' cardinality exactly like the step histogram's strategy
// labels.
var validSolverLabels = func() map[string]struct{} {
	v := make(map[string]struct{})
	for _, n := range solver.Names() {
		v[n] = struct{}{}
	}
	return v
}()

// jobCounters returns the counter block for a solver label, folding unknown
// names into "other".
func (m *Metrics) jobCounters(label string) *solverJobCounters {
	if _, ok := validSolverLabels[label]; !ok {
		label = stepLabelOther
	}
	m.mu.Lock()
	c := m.jobs[label]
	if c == nil {
		c = &solverJobCounters{}
		m.jobs[label] = c
	}
	m.mu.Unlock()
	return c
}

// JobSubmitted counts one accepted job, in total and under its solver label.
func (m *Metrics) JobSubmitted(solver string) {
	m.Submitted.Add(1)
	m.jobCounters(solver).Submitted.Add(1)
}

// JobRejected counts one admission-control rejection.
func (m *Metrics) JobRejected(solver string) {
	m.Rejected.Add(1)
	m.jobCounters(solver).Rejected.Add(1)
}

// JobSucceeded counts one successful completion.
func (m *Metrics) JobSucceeded(solver string) {
	m.Succeeded.Add(1)
	m.jobCounters(solver).Succeeded.Add(1)
}

// JobFailed counts one failed job.
func (m *Metrics) JobFailed(solver string) {
	m.Failed.Add(1)
	m.jobCounters(solver).Failed.Add(1)
}

// JobCanceled counts one canceled or expired job.
func (m *Metrics) JobCanceled(solver string) {
	m.Canceled.Add(1)
	m.jobCounters(solver).Canceled.Add(1)
}

// stepLabelOther buckets step observations whose strategy label is not one
// of the known strategies — the histogram label set stays bounded no matter
// what strings reach ObserveStep.
const stepLabelOther = "other"

// validStepLabels is the closed set of per-strategy histogram labels: the
// executor's strategy names plus the core-islands variant. ObserveStep
// validates against it so a hostile or buggy caller cannot mint one time
// series per request string and explode the exposition's cardinality.
// streamStepLabel is the step-histogram label of streamed jobs, whose
// dispatch unit (one whole tile sweep) is not comparable to a resident step.
const streamStepLabel = "streamed"

var validStepLabels = func() map[string]struct{} {
	v := make(map[string]struct{})
	for _, s := range []exec.Strategy{exec.Original, exec.Plus31D, exec.IslandsOfCores} {
		v[s.String()] = struct{}{}
	}
	v[exec.IslandsOfCores.String()+"+core-islands"] = struct{}{}
	v[streamStepLabel] = struct{}{}
	return v
}()

// ObserveStep records one completed step's latency for a strategy label.
// Labels outside the known strategy set are folded into "other".
func (m *Metrics) ObserveStep(strategy string, d time.Duration) {
	if _, ok := validStepLabels[strategy]; !ok {
		strategy = stepLabelOther
	}
	m.StepsRun.Add(1)
	m.mu.Lock()
	h := m.steps[strategy]
	if h == nil {
		h = newHistogram()
		m.steps[strategy] = h
	}
	m.mu.Unlock()
	h.observe(d)
}

// gauges are the live values the server injects at exposition time.
type gauges struct {
	QueueDepth    int
	QueueCapacity int
	SlotsBusy     int
	SlotsTotal    int
	CacheHits     uint64
	CacheMisses   uint64
	CacheSize     int
	CacheEvicted  uint64
	Running       int
	Draining      bool

	// Tuner counters, snapshotted from tune.Tuner.Counters() (all zero
	// when no tuner is configured).
	TunerEnabled    bool
	TunerDecisions  uint64
	TunerTuned      uint64
	TunerExplored   uint64
	TunerSeedErrors uint64
	TunerClasses    int

	// StreamDiskBW is the live disk-bandwidth EWMA in bytes/s that prices
	// streamed residencies (0 until a streamed job completes).
	StreamDiskBW float64
}

// write renders the Prometheus text exposition format.
func (m *Metrics) write(w io.Writer, g gauges) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	// Snapshot the per-solver counters once; each serve_jobs_* family below
	// emits its unlabeled total (stable for existing scrapers) followed by
	// one {solver=...} series per label seen.
	m.mu.Lock()
	solverLabels := make([]string, 0, len(m.jobs))
	for k := range m.jobs {
		solverLabels = append(solverLabels, k)
	}
	sort.Strings(solverLabels)
	solverCounts := make([]*solverJobCounters, len(solverLabels))
	for i, k := range solverLabels {
		solverCounts[i] = m.jobs[k]
	}
	m.mu.Unlock()
	jc := func(name, help string, total uint64, per func(*solverJobCounters) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, total)
		for i, label := range solverLabels {
			fmt.Fprintf(w, "%s{solver=%q} %d\n", name, label, per(solverCounts[i]))
		}
	}
	jc("serve_jobs_submitted_total", "Jobs accepted into the queue.", m.Submitted.Load(),
		func(c *solverJobCounters) uint64 { return c.Submitted.Load() })
	jc("serve_jobs_rejected_total", "Jobs refused by admission control.", m.Rejected.Load(),
		func(c *solverJobCounters) uint64 { return c.Rejected.Load() })
	jc("serve_jobs_succeeded_total", "Jobs that completed successfully.", m.Succeeded.Load(),
		func(c *solverJobCounters) uint64 { return c.Succeeded.Load() })
	jc("serve_jobs_failed_total", "Jobs that failed (worker failure or internal error).", m.Failed.Load(),
		func(c *solverJobCounters) uint64 { return c.Failed.Load() })
	jc("serve_jobs_canceled_total", "Jobs canceled or expired (deadline, drain).", m.Canceled.Load(),
		func(c *solverJobCounters) uint64 { return c.Canceled.Load() })
	c("serve_steps_total", "Completed simulation time steps across all jobs.", m.StepsRun.Load())
	gauge("serve_jobs_running", "Jobs currently executing on a runner slot.", int64(g.Running))
	gauge("serve_queue_depth", "Jobs waiting for admission.", int64(g.QueueDepth))
	gauge("serve_queue_capacity", "Maximum queue depth before rejection.", int64(g.QueueCapacity))
	gauge("serve_slots_busy", "Runner slots currently leased.", int64(g.SlotsBusy))
	gauge("serve_slots_total", "Runner slot capacity.", int64(g.SlotsTotal))
	c("serve_schedule_cache_hits_total", "Jobs that reused a cached compiled runner.", g.CacheHits)
	c("serve_schedule_cache_misses_total", "Jobs that compiled a fresh runner.", g.CacheMisses)
	c("serve_schedule_cache_evictions_total", "Cached runners discarded by the LRU bound.", g.CacheEvicted)
	gauge("serve_schedule_cache_size", "Idle compiled runners currently cached.", int64(g.CacheSize))
	draining := int64(0)
	if g.Draining {
		draining = 1
	}
	gauge("serve_draining", "1 while the server drains (no admissions).", draining)
	enabled := int64(0)
	if g.TunerEnabled {
		enabled = 1
	}
	gauge("serve_tuner_enabled", "1 when the autotuner maps job specs to tuned configs.", enabled)
	c("serve_tuner_decisions_total", "Tuning decisions taken for served jobs.", g.TunerDecisions)
	c("serve_tuner_tuned_total", "Decisions that substituted a different config than requested.", g.TunerTuned)
	c("serve_tuner_explored_total", "Decisions that ran an exploration probe.", g.TunerExplored)
	c("serve_tuner_pinned_total", "Jobs that opted out of tuning via spec pin.", m.TunerPinned.Load())
	c("serve_tuner_seed_errors_total", "Problem classes whose candidate seeding failed (passthrough).", g.TunerSeedErrors)
	gauge("serve_tuner_classes", "Distinct problem classes the tuner has seen.", int64(g.TunerClasses))
	c("serve_stream_jobs_total", "Streamed (out-of-core) jobs that completed successfully.", m.StreamJobs.Load())
	c("serve_stream_tiles_total", "Tile residencies completed by streamed jobs.", m.StreamTiles.Load())
	c("serve_stream_bytes_read_total", "Bytes read from spill stores by streamed jobs.", m.StreamBytesRead.Load())
	c("serve_stream_bytes_written_total", "Bytes written to spill stores by streamed jobs.", m.StreamBytesWritten.Load())
	c("serve_stream_resumed_total", "Streamed jobs that resumed a named store's checkpoint.", m.StreamResumed.Load())
	fmt.Fprintf(w, "# HELP serve_stream_disk_bw_bytes Live disk-bandwidth EWMA pricing streamed residencies (bytes/s).\n# TYPE serve_stream_disk_bw_bytes gauge\nserve_stream_disk_bw_bytes %g\n", g.StreamDiskBW)

	fmt.Fprintf(w, "# HELP serve_step_seconds Per-step wall latency by strategy.\n# TYPE serve_step_seconds histogram\n")
	m.mu.Lock()
	labels := make([]string, 0, len(m.steps))
	for k := range m.steps {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	hists := make([]*histogram, len(labels))
	for i, k := range labels {
		hists[i] = m.steps[k]
	}
	m.mu.Unlock()
	for i, label := range labels {
		h := hists[i]
		var cum uint64
		for b, bound := range stepBuckets {
			cum += h.counts[b].Load()
			fmt.Fprintf(w, "serve_step_seconds_bucket{strategy=%q,le=%q} %d\n", label, trimFloat(bound), cum)
		}
		cum += h.counts[len(stepBuckets)].Load()
		fmt.Fprintf(w, "serve_step_seconds_bucket{strategy=%q,le=\"+Inf\"} %d\n", label, cum)
		fmt.Fprintf(w, "serve_step_seconds_sum{strategy=%q} %g\n", label, float64(h.sum.Load())/1e9)
		fmt.Fprintf(w, "serve_step_seconds_count{strategy=%q} %d\n", label, h.n.Load())
	}
}

// trimFloat renders a bucket bound without trailing zeros.
func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
