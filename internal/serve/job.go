package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is the lifecycle state of a job. The FSM is strictly forward:
// queued -> running -> {succeeded, failed, canceled}, with queued -> canceled
// for jobs canceled (or expired) before admission.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSucceeded JobState = "succeeded"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Event is one SSE progress message of GET /v1/jobs/{id}/events.
type Event struct {
	// Type is "state" (lifecycle transition), "progress" (a completed
	// step) or "done" (terminal summary; the stream ends after it).
	Type string `json:"type"`
	// State is the job state at emission.
	State JobState `json:"state"`
	// Step is the number of completed steps; Steps the requested total.
	Step  int `json:"step"`
	Steps int `json:"steps"`
	// Tile/Tiles report a streamed job's tile-granular progress: tile
	// residencies completed over the whole run's total (zero on resident
	// jobs, whose progress is step-granular only).
	Tile  int `json:"tile,omitempty"`
	Tiles int `json:"tiles,omitempty"`
	// Error carries the failure (or cancellation reason) verbatim.
	Error string `json:"error,omitempty"`
}

// Result is the payload of GET /v1/jobs/{id}/result for a finished job.
type Result struct {
	// Checksums summarize the final solution field.
	Checksums Checksums `json:"checksums"`
	// Strategy is the executed strategy's report label.
	Strategy string `json:"strategy"`
	// Steps is the number of completed time steps.
	Steps int `json:"steps"`
	// WallMs is the job's running wall time (admission to finish).
	WallMs float64 `json:"wall_ms"`
	// StepMsAvg is the mean per-step latency.
	StepMsAvg float64 `json:"step_ms_avg"`
	// QueueMs is the time the job waited for admission.
	QueueMs float64 `json:"queue_ms"`
	// CacheHit reports whether the job reused a cached compiled schedule.
	CacheHit bool `json:"cache_hit"`
	// RequestedConfig and TunedConfig name the configuration the client
	// asked for and the one the job actually ran (advisor-style labels);
	// TunedConfig is present only when a tuner decided for the job.
	RequestedConfig string `json:"requested_config,omitempty"`
	TunedConfig     string `json:"tuned_config,omitempty"`
	// Tuned reports that the tuner substituted a different knob
	// combination than requested; Explored that the job ran as an
	// exploration probe rather than the best-known configuration.
	Tuned    bool `json:"tuned,omitempty"`
	Explored bool `json:"explored,omitempty"`
	// TuneReason explains the tuner's choice: "measured", "model",
	// "explore", "requested", or a seed error.
	TuneReason string `json:"tune_reason,omitempty"`
	// KSteps is the temporal-blocking factor the engine actually compiled;
	// KStepFallback carries the executor's reason when a requested k > 1
	// fell back to 1 (the mpdata-load silent-fallback gate audits these).
	KSteps        int    `json:"ksteps,omitempty"`
	KStepFallback string `json:"kstep_fallback,omitempty"`
	// Profile, when the spec requested it, embeds the same per-phase
	// breakdown mpdata-sim -profile prints.
	Profile *ProfileReport `json:"profile,omitempty"`
	// Stream, on streamed jobs, reports the out-of-core run: the chosen
	// residency, bytes moved and the measured compute/I-O overlap.
	Stream *StreamReport `json:"stream,omitempty"`
}

// ProfileReport is the runtime profile of a job: the rendered table plus the
// structured per-phase rows.
type ProfileReport struct {
	// Table is the rendered perf.ProfileTable text.
	Table string `json:"table"`
	// Phases lists the per-phase totals in execution order.
	Phases []ProfilePhase `json:"phases"`
}

// ProfilePhase is one phase row of a job profile.
type ProfilePhase struct {
	Label     string  `json:"label"`
	ComputeMs float64 `json:"compute_ms"`
	SpinMs    float64 `json:"spin_ms"`
	ParkMs    float64 `json:"park_ms"`
}

// JobStatus is the wire form of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Step/Steps report progress (completed / requested).
	Step  int `json:"step"`
	Steps int `json:"steps"`
	// QueuePosition is the 1-based position among queued jobs (0 once
	// admitted).
	QueuePosition int `json:"queue_position,omitempty"`
	// Error carries a failed (or canceled) job's reason verbatim.
	Error string `json:"error,omitempty"`
	// Result is present on succeeded jobs.
	Result *Result `json:"result,omitempty"`
	Spec   Spec    `json:"spec"`
	// Replica and Reroutes are filled by the fleet router (docs/FLEET.md):
	// the replica the job last ran on and the number of replica-fault
	// re-placements it survived. Always empty/zero on a single server.
	Replica  string `json:"replica,omitempty"`
	Reroutes int    `json:"reroutes,omitempty"`
}

// Job is one admitted simulation request moving through the FSM.
type Job struct {
	ID   string
	Spec Spec
	ns   NormSpec

	// ctx governs the job's deadline/cancellation; cancel aborts it.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu       sync.Mutex
	state    JobState
	step     int
	errMsg   string
	result   *Result
	created  time.Time
	started  time.Time
	finished time.Time
	subs     map[chan Event]struct{}

	// done is closed on the terminal transition.
	done chan struct{}

	// drainKilled marks a job aborted by the drain timeout; its terminal
	// state is failed (the drain contract) rather than canceled.
	drainKilled atomic.Bool
}

// newJob builds a queued job with its cancellation context.
func newJob(id string, spec Spec, ns NormSpec, now time.Time) *Job {
	ctx := context.Background()
	var cancelTimeout context.CancelFunc
	if ns.TimeoutMs > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, time.Duration(ns.TimeoutMs)*time.Millisecond)
	}
	jctx, cancel := context.WithCancelCause(ctx)
	j := &Job{
		ID:      id,
		Spec:    spec,
		ns:      ns,
		ctx:     jctx,
		state:   StateQueued,
		created: now,
		subs:    make(map[chan Event]struct{}),
		done:    make(chan struct{}),
	}
	j.cancel = func(cause error) {
		cancel(cause)
		if cancelTimeout != nil {
			cancelTimeout()
		}
	}
	return j
}

// Cancel requests cancellation: a queued job is withdrawn at admission, a
// running job is aborted mid-step through the engine's barrier-abort path.
func (j *Job) Cancel(reason string) {
	j.cancel(fmt.Errorf("%s", reason))
}

// Done returns the channel closed at the terminal transition.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// cancelCause extracts the cancellation reason of the job's context.
func (j *Job) cancelCause() string {
	cause := context.Cause(j.ctx)
	if cause == nil {
		cause = j.ctx.Err()
	}
	if cause == nil {
		return "canceled"
	}
	if cause == context.DeadlineExceeded {
		return "deadline exceeded"
	}
	return cause.Error()
}

// setRunning transitions queued -> running; false if the job is no longer
// queued (canceled before admission).
func (j *Job) setRunning(now time.Time) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = now
	j.mu.Unlock()
	j.publish(Event{Type: "state", State: StateRunning, Steps: j.ns.Steps})
	return true
}

// progress records a completed step and notifies subscribers.
func (j *Job) progress(step int) {
	j.mu.Lock()
	j.step = step
	j.mu.Unlock()
	j.publish(Event{Type: "progress", State: StateRunning, Step: step, Steps: j.ns.Steps})
}

// progressTiles records a streamed job's tile-granular progress: step counts
// completed whole steps (durable sweeps), tile/tiles the completed residencies
// over the run's total.
func (j *Job) progressTiles(step, tile, tiles int) {
	j.mu.Lock()
	j.step = step
	j.mu.Unlock()
	j.publish(Event{Type: "progress", State: StateRunning, Step: step, Steps: j.ns.Steps, Tile: tile, Tiles: tiles})
}

// finish performs the terminal transition exactly once, reporting whether
// this call did it; extra calls (e.g. a cancel racing a natural completion)
// are ignored.
func (j *Job) finish(state JobState, errMsg string, result *Result, now time.Time) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.finished = now
	step := j.step
	j.mu.Unlock()
	j.publish(Event{Type: "done", State: state, Step: step, Steps: j.ns.Steps, Error: errMsg})
	close(j.done)
	return true
}

// publish fans an event out to the subscribers. Slow subscribers drop
// intermediate events (their channel is buffered); the terminal event is
// never lost because the SSE handler also watches Done.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an event channel; the returned func unsubscribes.
func (j *Job) subscribe() (chan Event, func()) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// status snapshots the job for the API (queue position filled by the
// server).
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:     j.ID,
		State:  j.state,
		Step:   j.step,
		Steps:  j.ns.Steps,
		Error:  j.errMsg,
		Result: j.result,
		Spec:   j.Spec,
	}
}
