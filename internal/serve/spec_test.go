package serve

import (
	"strings"
	"testing"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	ns, err := Spec{Grid: "48x32x8", Steps: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ns.Domain.NI != 48 || ns.Domain.NJ != 32 || ns.Domain.NK != 8 {
		t.Fatalf("domain = %+v, want 48x32x8", ns.Domain)
	}
	if ns.Processors != 2 || ns.IORD != 2 {
		t.Fatalf("defaults = p%d iord%d, want p2 iord2", ns.Processors, ns.IORD)
	}
	if got := ns.StrategyName(); got != "islands-of-cores" {
		t.Fatalf("default strategy = %q, want islands-of-cores", got)
	}
}

func TestSpecStrategyNames(t *testing.T) {
	cases := []struct {
		strategy string
		core     bool
		want     string
	}{
		{"original", false, "original"},
		{"3+1d", false, "(3+1)D"},
		{"blocked", false, "(3+1)D"},
		{"islands", false, "islands-of-cores"},
		{"islands-of-cores", true, "islands-of-cores+core-islands"},
	}
	for _, c := range cases {
		ns, err := Spec{Grid: "16x8x4", Steps: 1, Strategy: c.strategy, CoreIslands: c.core}.Normalize()
		if err != nil {
			t.Fatalf("%q: %v", c.strategy, err)
		}
		if got := ns.StrategyName(); got != c.want {
			t.Fatalf("strategy %q -> %q, want %q", c.strategy, got, c.want)
		}
	}
}

func TestSpecValidationRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bad grid", Spec{Grid: "10", Steps: 1}, "grid"},
		{"zero grid dim", Spec{Grid: "0x8x4", Steps: 1}, "positive"},
		{"huge grid", Spec{Grid: "100000x100000x100000", Steps: 1}, "cells"},
		{"zero steps", Spec{Grid: "16x8x4", Steps: 0}, "steps"},
		{"negative steps", Spec{Grid: "16x8x4", Steps: -5}, "steps"},
		{"too many steps", Spec{Grid: "16x8x4", Steps: MaxSteps + 1}, "steps"},
		{"zero processors", Spec{Grid: "16x8x4", Steps: 1, Processors: -1}, "processors"},
		{"too many processors", Spec{Grid: "16x8x4", Steps: 1, Processors: 99}, "processors"},
		{"unknown strategy", Spec{Grid: "16x8x4", Steps: 1, Strategy: "magic"}, "strategy"},
		{"unknown placement", Spec{Grid: "16x8x4", Steps: 1, Placement: "diagonal"}, "placement"},
		{"unknown variant", Spec{Grid: "16x8x4", Steps: 1, Variant: "Z"}, "variant"},
		{"unknown boundary", Spec{Grid: "16x8x4", Steps: 1, Boundary: "wrap"}, "boundary"},
		{"core islands on original", Spec{Grid: "16x8x4", Steps: 1, Strategy: "original", CoreIslands: true}, "core"},
		{"bad iord", Spec{Grid: "16x8x4", Steps: 1, IORD: 9}, "iord"},
		{"negative ksteps", Spec{Grid: "16x8x4", Steps: 1, KSteps: -2}, "ksteps"},
		{"ksteps on original", Spec{Grid: "16x8x4", Steps: 2, Strategy: "original", KSteps: 2}, "islands"},
		{"ksteps not dividing steps", Spec{Grid: "32x16x8", Steps: 5, KSteps: 2}, "multiple"},
		// 2 islands over NI=16 leave 8-wide parts, narrower than the
		// 12-cell k=4 halo: the executor's fallback reason must surface
		// verbatim at submission (same text mpdata-sim -ksteps prints).
		{"infeasible ksteps", Spec{Grid: "16x16x8", Steps: 4, KSteps: 4}, "falls back to 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error mentioning %q", c.spec, c.want)
			}
			if !strings.Contains(strings.ToLower(err.Error()), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestCacheKeyIgnoresStepsAndProfile(t *testing.T) {
	base := Spec{Grid: "16x8x4", Steps: 1, Processors: 2}
	a, err := base.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	alt := base
	alt.Steps = 500
	alt.Profile = true
	alt.TimeoutMs = 9000
	b, err := alt.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatal("cache key varies with steps/profile/timeout; engines would never be reused across job lengths")
	}

	diff := base
	diff.Processors = 4
	c, err := diff.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == c.Key() {
		t.Fatal("cache key ignores processor count; jobs would reuse a wrong topology")
	}

	blocked := Spec{Grid: "32x16x8", Steps: 4, Processors: 2, KSteps: 4}
	d, err := blocked.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	plain := blocked
	plain.KSteps = 1
	e, err := plain.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if d.Key() == e.Key() {
		t.Fatal("cache key ignores ksteps; a k=4 job would reuse a k=1 schedule")
	}
}

func TestParseGridAgreesWithCLI(t *testing.T) {
	g, err := ParseGrid("12x34x56")
	if err != nil {
		t.Fatal(err)
	}
	if g.NI != 12 || g.NJ != 34 || g.NK != 56 {
		t.Fatalf("ParseGrid = %+v", g)
	}
	for _, bad := range []string{"", "12x34", "axbxc", "12x34x56x78"} {
		if _, err := ParseGrid(bad); err == nil {
			t.Fatalf("ParseGrid(%q) accepted", bad)
		}
	}
}
