package serve

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"islands/internal/exec"
)

// fakeEngine counts builds and closes so pool tests can assert cache and
// eviction behavior without compiling real runners.
type fakeEngine struct {
	closed atomic.Bool
}

func (e *fakeEngine) Reset() error           { return nil }
func (e *fakeEngine) Step() error            { return nil }
func (e *fakeEngine) Abort(string)           {}
func (e *fakeEngine) Checksums() Checksums   { return Checksums{} }
func (e *fakeEngine) SetProfiling(bool)      {}
func (e *fakeEngine) Profile() *exec.Profile { return nil }
func (e *fakeEngine) Info() EngineInfo       { return EngineInfo{KSteps: 1} }
func (e *fakeEngine) Close()                 { e.closed.Store(true) }

func fakeFactory(builds *atomic.Int64) EngineFactory {
	return func(NormSpec) (Engine, error) {
		builds.Add(1)
		return &fakeEngine{}, nil
	}
}

func normSpec(t *testing.T, grid string) NormSpec {
	t.Helper()
	ns, err := Spec{Grid: grid, Steps: 1, Processors: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestPoolCacheHitSkipsBuild(t *testing.T) {
	var builds atomic.Int64
	p := NewPool(2, 4, fakeFactory(&builds))
	defer p.Close()
	ns := normSpec(t, "16x8x4")

	l1, err := p.Acquire(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Hit {
		t.Fatal("first acquire reported a cache hit")
	}
	l1.Release(true)

	l2, err := p.Acquire(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Hit {
		t.Fatal("second acquire of the same spec missed the cache")
	}
	l2.Release(true)

	if n := builds.Load(); n != 1 {
		t.Fatalf("factory ran %d times, want 1", n)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPoolDiscardOnRelease(t *testing.T) {
	var builds atomic.Int64
	p := NewPool(1, 4, fakeFactory(&builds))
	defer p.Close()
	ns := normSpec(t, "16x8x4")

	l, err := p.Acquire(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	eng := l.Engine().(*fakeEngine)
	l.Release(false) // poisoned: must not be cached
	if !eng.closed.Load() {
		t.Fatal("discarded engine was not closed")
	}

	l2, err := p.Acquire(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Hit {
		t.Fatal("acquire after discard reported a cache hit")
	}
	l2.Release(true)
	if n := builds.Load(); n != 2 {
		t.Fatalf("factory ran %d times, want 2", n)
	}
}

func TestPoolLRUEviction(t *testing.T) {
	var builds atomic.Int64
	p := NewPool(1, 2, fakeFactory(&builds))
	defer p.Close()

	grids := []string{"16x8x4", "24x8x4", "32x8x4"}
	engines := make([]*fakeEngine, len(grids))
	for i, g := range grids {
		l, err := p.Acquire(context.Background(), normSpec(t, g))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = l.Engine().(*fakeEngine)
		l.Release(true)
	}

	st := p.Stats()
	if st.Idle != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 idle / 1 eviction", st)
	}
	if !engines[0].closed.Load() {
		t.Fatal("LRU victim (first engine) was not closed")
	}
	if engines[1].closed.Load() || engines[2].closed.Load() {
		t.Fatal("a recently used engine was evicted")
	}
}

func TestPoolCapacityBlocksAcquire(t *testing.T) {
	var builds atomic.Int64
	p := NewPool(1, 2, fakeFactory(&builds))
	defer p.Close()
	ns := normSpec(t, "16x8x4")

	l, err := p.Acquire(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}

	// The single slot is busy: a second acquire must block until released.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx, ns); err == nil {
		t.Fatal("acquire succeeded while the only slot was busy")
	}

	got := make(chan error, 1)
	go func() {
		l2, err := p.Acquire(context.Background(), ns)
		if err == nil {
			l2.Release(true)
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Release(true)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("blocked acquire failed after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire still blocked after the slot was released")
	}
}

func TestPoolCloseClosesCachedEngines(t *testing.T) {
	var builds atomic.Int64
	p := NewPool(2, 4, fakeFactory(&builds))
	ns := normSpec(t, "16x8x4")
	l, err := p.Acquire(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	eng := l.Engine().(*fakeEngine)
	l.Release(true)

	p.Close()
	if !eng.closed.Load() {
		t.Fatal("cached engine not closed by pool Close")
	}
	if _, err := p.Acquire(context.Background(), ns); err == nil {
		t.Fatal("acquire on a closed pool succeeded")
	}
}
