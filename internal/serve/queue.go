package serve

import (
	"fmt"
	"sync"
	"time"
)

// ErrQueueFull is the admission-control rejection: the queue is at its
// configured depth, and the client should retry after the hinted delay (the
// HTTP layer maps it to 429 + Retry-After).
type ErrQueueFull struct {
	Depth      int
	RetryAfter time.Duration
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("serve: job queue full (depth %d), retry after %s", e.Depth, e.RetryAfter)
}

// queue is the bounded FIFO admission queue. Submissions beyond maxDepth are
// rejected (backpressure); dispatchers block in pop until a job or shutdown
// arrives. Canceled jobs are skipped lazily at pop time and eagerly removed
// by remove, so queue positions stay honest.
type queue struct {
	maxDepth   int
	retryAfter time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	closed bool
}

func newQueue(maxDepth int, retryAfter time.Duration) *queue {
	if maxDepth <= 0 {
		maxDepth = 64
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	q := &queue{maxDepth: maxDepth, retryAfter: retryAfter}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job or rejects it with ErrQueueFull.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.maxDepth {
		return &ErrQueueFull{Depth: q.maxDepth, RetryAfter: q.retryAfter}
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available (returning the FIFO head) or the queue
// is closed (returning nil). Jobs whose context is already done are skipped
// and returned to the caller via the skipped slice so the server can mark
// them canceled outside the queue lock.
func (q *queue) pop() (j *Job, skipped []*Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for len(q.items) > 0 {
			head := q.items[0]
			q.items = q.items[1:]
			if head.ctx.Err() != nil || head.State() != StateQueued {
				skipped = append(skipped, head)
				continue
			}
			return head, skipped
		}
		if q.closed {
			return nil, skipped
		}
		q.cond.Wait()
	}
}

// remove withdraws a queued job (cancellation before admission); false if
// the job was not found (already popped).
func (q *queue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// position returns the job's 1-based queue position, 0 if not queued.
func (q *queue) position(j *Job) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			return i + 1
		}
	}
	return 0
}

// depth returns the number of queued jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// snapshot returns the queued jobs in order.
func (q *queue) snapshot() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, len(q.items))
	copy(out, q.items)
	return out
}

// close wakes every dispatcher; queued jobs still in the slice are left for
// the server's drain logic to cancel.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
