package serve

import (
	"islands/internal/exec"
	"islands/internal/perf"
)

// renderProfileTable renders the per-phase runtime breakdown of a job with
// the same perf.ProfileTable that mpdata-sim -profile prints, so a job
// result embeds the familiar phase table verbatim.
func renderProfileTable(label string, prof *exec.Profile) string {
	return perf.ProfileTable(label, prof).Render()
}
