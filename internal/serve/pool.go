package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"islands/internal/topology"
)

// DefaultSlots returns the default runner-slot capacity: the host's CPU
// count divided by the cores one simulated work team occupies (a UV 2000
// socket's 8 cores), so concurrently running jobs roughly fill the machine
// without oversubscribing it. Always at least 1.
func DefaultSlots() int {
	m, err := topology.UV2000(1)
	coresPerTeam := 8
	if err == nil && len(m.Nodes) > 0 && m.Nodes[0].Cores > 0 {
		coresPerTeam = m.Nodes[0].Cores
	}
	n := runtime.NumCPU() / coresPerTeam
	if n < 1 {
		n = 1
	}
	return n
}

// poolEntry is one cached engine with its spec key and LRU bookkeeping.
type poolEntry struct {
	key    CacheKey
	ns     NormSpec
	engine Engine
	// tick is the entry's last-use stamp for LRU eviction.
	tick uint64
}

// Lease is a leased pool slot holding an engine for one job. Exactly one of
// Release(reuse) must be called when the job is done: reuse=true returns the
// engine to the schedule cache, reuse=false discards it (poisoned engines —
// failed, aborted or canceled jobs — must not be cached).
type Lease struct {
	pool  *Pool
	entry *poolEntry
	// Hit reports whether the engine came from the schedule cache
	// (compile cost skipped) rather than a fresh build.
	Hit  bool
	done bool
}

// Engine returns the leased engine.
func (l *Lease) Engine() Engine { return l.entry.engine }

// Release returns the slot token and either caches or discards the engine.
func (l *Lease) Release(reuse bool) {
	if l.done {
		return
	}
	l.done = true
	l.pool.release(l.entry, reuse)
}

// Pool owns the runner slots: at most Capacity engines execute concurrently,
// and idle engines are cached per spec key so repeat jobs skip compilation.
type Pool struct {
	capacity  int
	maxCached int
	factory   EngineFactory

	// tokens holds one value per free slot; Acquire takes one, release
	// returns it. Channel semantics give context-aware blocking for free.
	tokens chan struct{}

	mu     sync.Mutex
	idle   map[CacheKey][]*poolEntry
	nIdle  int
	busy   int
	ticker uint64
	closed bool

	// hits/misses count schedule-cache outcomes; evictions counts cached
	// engines discarded to respect maxCached.
	hits, misses, evictions uint64
}

// NewPool creates a pool of capacity slots caching at most maxCached idle
// engines (0 defaults: DefaultSlots() slots; max(capacity, 8) cached — large
// enough to keep one warm engine per strategy in a mixed workload).
func NewPool(capacity, maxCached int, factory EngineFactory) *Pool {
	if capacity <= 0 {
		capacity = DefaultSlots()
	}
	if maxCached <= 0 {
		maxCached = capacity
		if maxCached < 8 {
			maxCached = 8
		}
	}
	if factory == nil {
		factory = NewSolverEngine
	}
	p := &Pool{
		capacity:  capacity,
		maxCached: maxCached,
		factory:   factory,
		tokens:    make(chan struct{}, capacity),
		idle:      make(map[CacheKey][]*poolEntry),
	}
	for i := 0; i < capacity; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Capacity returns the slot count.
func (p *Pool) Capacity() int { return p.capacity }

// Acquire leases a slot and an engine for the spec, blocking until a slot is
// free or the context is done. A cached engine with the same key is a hit;
// otherwise a fresh engine is compiled (a miss).
func (p *Pool) Acquire(ctx context.Context, ns NormSpec) (*Lease, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case _, ok := <-p.tokens:
		if !ok {
			return nil, fmt.Errorf("serve: pool closed")
		}
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.returnToken()
		return nil, fmt.Errorf("serve: pool closed")
	}
	key := ns.Key()
	if list := p.idle[key]; len(list) > 0 {
		entry := list[len(list)-1]
		p.idle[key] = list[:len(list)-1]
		if len(p.idle[key]) == 0 {
			delete(p.idle, key)
		}
		p.nIdle--
		p.busy++
		p.hits++
		p.mu.Unlock()
		return &Lease{pool: p, entry: entry, Hit: true}, nil
	}
	p.misses++
	p.busy++
	p.mu.Unlock()

	eng, err := p.factory(ns)
	if err != nil {
		p.mu.Lock()
		p.busy--
		p.mu.Unlock()
		p.returnToken()
		return nil, err
	}
	return &Lease{pool: p, entry: &poolEntry{key: key, ns: ns, engine: eng}}, nil
}

// release returns the slot token and caches or discards the engine.
func (p *Pool) release(entry *poolEntry, reuse bool) {
	var evicted []*poolEntry
	p.mu.Lock()
	p.busy--
	if reuse && !p.closed {
		p.ticker++
		entry.tick = p.ticker
		p.idle[entry.key] = append(p.idle[entry.key], entry)
		p.nIdle++
		for p.nIdle > p.maxCached {
			if victim := p.evictOldestLocked(); victim != nil {
				evicted = append(evicted, victim)
			} else {
				break
			}
		}
	} else {
		evicted = append(evicted, entry)
	}
	p.mu.Unlock()
	for _, e := range evicted {
		e.engine.Close()
	}
	p.returnToken()
}

// evictOldestLocked removes the least-recently-used idle entry. Caller holds
// p.mu; the caller closes the returned engine outside the lock.
func (p *Pool) evictOldestLocked() *poolEntry {
	var oldest *poolEntry
	var oldestKey CacheKey
	var oldestIdx int
	for key, list := range p.idle {
		for i, e := range list {
			if oldest == nil || e.tick < oldest.tick {
				oldest, oldestKey, oldestIdx = e, key, i
			}
		}
	}
	if oldest == nil {
		return nil
	}
	list := p.idle[oldestKey]
	p.idle[oldestKey] = append(list[:oldestIdx], list[oldestIdx+1:]...)
	if len(p.idle[oldestKey]) == 0 {
		delete(p.idle, oldestKey)
	}
	p.nIdle--
	p.evictions++
	return oldest
}

// returnToken frees a slot. The send happens under the pool mutex so it
// cannot race with Close closing the channel; it never blocks because the
// release/failed-Acquire paths return exactly the tokens they took.
func (p *Pool) returnToken() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	select {
	case p.tokens <- struct{}{}:
	default:
	}
}

// PoolStats is a snapshot of the pool's gauges and counters.
type PoolStats struct {
	Capacity  int
	Busy      int
	Idle      int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Capacity:  p.capacity,
		Busy:      p.busy,
		Idle:      p.nIdle,
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
	}
}

// Close discards every cached engine and rejects further Acquires. Leased
// engines are closed by their Release (which discards once closed).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var all []*poolEntry
	for _, list := range p.idle {
		all = append(all, list...)
	}
	p.idle = make(map[CacheKey][]*poolEntry)
	p.nIdle = 0
	// Close the token channel under the mutex: returnToken sends under the
	// same mutex, so a send can never race the close.
	close(p.tokens)
	p.mu.Unlock()
	for _, e := range all {
		e.engine.Close()
	}
}
