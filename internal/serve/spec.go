// Package serve is the simulation serving subsystem: a pool of pre-warmed,
// reusable runner slots (compiled execution schedules and private halo
// buffers are cached per spec key, so repeat jobs skip the NewRunner compile
// cost), an admission-controlled FIFO job queue with backpressure, and the
// HTTP API served by cmd/mpdata-serve. The paper's discipline — islands are
// independent within a step and meet only at one barrier — maps onto the
// server shape: concurrent jobs are islands of work sharing a bounded slot
// pool, meeting only at the admission queue.
package serve

import (
	"fmt"
	"strings"

	"islands/internal/decomp"
	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/solver"
	"islands/internal/stencil"
	"islands/internal/topology"
)

// Validation bounds shared by the server and the CLIs: absurd requests are
// rejected with a diagnostic at the spec boundary instead of reaching the
// allocator or panicking deep inside NewRunner.
const (
	// MaxGridCells bounds the domain a resident (in-memory) job may claim;
	// larger domains are rejected with an *ErrGridTooLarge pointing at the
	// streamed job class.
	MaxGridCells = int64(1) << 31
	// MaxStreamCells bounds the domain of a streamed (out-of-core) job —
	// the spill store still has to fit on disk.
	MaxStreamCells = int64(1) << 40
	// MaxSteps bounds the accepted step count of one job.
	MaxSteps = 1_000_000
	// MaxProcessors is the simulated UV 2000's socket count.
	MaxProcessors = 14
)

// ErrGridTooLarge rejects a domain over its job class's cell bound. The
// server maps it to HTTP 413; for a resident job the message names the
// streamed job class, which accepts domains up to MaxStreamCells.
type ErrGridTooLarge struct {
	// Grid is the spec's grid string verbatim.
	Grid string
	// Cells and Limit are the requested and permitted cell counts.
	Cells, Limit int64
	// Streamed reports which class's bound was exceeded.
	Streamed bool
}

func (e *ErrGridTooLarge) Error() string {
	cells := fmt.Sprintf("%d cells", e.Cells)
	if e.Cells < 0 {
		cells = "cell count overflows"
	}
	if e.Streamed {
		return fmt.Sprintf("grid %s (%s) exceeds the streamed limit of %d cells", e.Grid, cells, e.Limit)
	}
	return fmt.Sprintf(`grid %s (%s) exceeds the resident limit of %d cells; resubmit with "streamed": true (and a memory_budget_mb) to run it out of core`, e.Grid, cells, e.Limit)
}

// Spec is one simulation job request: the wire format of POST /v1/jobs and
// the validated form of the mpdata-sim flags. The zero value of every
// optional field selects the documented default.
type Spec struct {
	// Grid is the domain size as "NIxNJxNK" (e.g. "128x64x16"). Required.
	Grid string `json:"grid"`
	// Solver names the stencil program to run, one of the catalog entries
	// (docs/SOLVERS.md; "" = mpdata). Solvers with a k-axis component
	// packing constrain NK — the spec is rejected when the grid violates
	// the solver's domain check.
	Solver string `json:"solver,omitempty"`
	// Steps is the number of time steps (1..MaxSteps). Required.
	Steps int `json:"steps"`
	// Strategy is "original", "3+1d" or "islands" ("" = islands).
	Strategy string `json:"strategy,omitempty"`
	// Processors is the simulated UV 2000 socket count (1..14, 0 = 2).
	Processors int `json:"processors,omitempty"`
	// Placement is "serial", "parallel" or "interleaved" ("" = parallel).
	Placement string `json:"placement,omitempty"`
	// Variant is the 1D island mapping dimension, "A" or "B" ("" = A).
	Variant string `json:"variant,omitempty"`
	// Boundary is "clamp" or "periodic" ("" = clamp).
	Boundary string `json:"boundary,omitempty"`
	// CoreIslands applies the islands approach inside every island (§6).
	CoreIslands bool `json:"core_islands,omitempty"`
	// KSteps temporally blocks the island strategies: islands advance
	// KSteps full time steps on private buffers between global joins
	// (0 or 1 = step at a time). Requires the islands strategy, a steps
	// count divisible by KSteps (served jobs advance whole blocks), and a
	// partition wide enough to carry the k-step halo — an infeasible k is
	// rejected at submission with the executor's fallback reason rather
	// than silently running at k=1.
	KSteps int `json:"ksteps,omitempty"`
	// IORD is the MPDATA order, 1..4 (0 = the paper's default of 2).
	IORD int `json:"iord,omitempty"`
	// Unlimited disables the non-oscillatory flux limiter.
	Unlimited bool `json:"unlimited,omitempty"`
	// BlockI overrides the (3+1)D block width (0 = size from cache).
	BlockI int `json:"block_i,omitempty"`
	// DisableFusion turns off stage fusion (ablation knob).
	DisableFusion bool `json:"disable_fusion,omitempty"`
	// DisableHaloExchange forces the whole-part publish copies (ablation).
	DisableHaloExchange bool `json:"disable_halo_exchange,omitempty"`
	// Pin opts the job out of autotuning: it runs exactly as specified
	// even when the server's tuner knows a faster configuration for the
	// same problem class (docs/TUNING.md). No effect without a tuner.
	Pin bool `json:"pin,omitempty"`
	// Profile embeds the per-phase runtime breakdown (the same table
	// mpdata-sim -profile prints) in the job result.
	Profile bool `json:"profile,omitempty"`
	// TimeoutMs is the job deadline in milliseconds, counted from
	// submission (covers queue wait). 0 means no deadline.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Streamed runs the job out of core (docs/STREAMING.md): the domain is
	// cut into disk-backed tiles streamed through a resident engine under
	// MemoryBudgetMB, so grids up to MaxStreamCells are accepted. The
	// residency (tile width and temporal factor k) is chosen by the cost
	// model, so ksteps must be left unset.
	Streamed bool `json:"streamed,omitempty"`
	// MemoryBudgetMB caps a streamed job's resident footprint in MiB
	// (0 = the server's default budget). Ignored for resident jobs.
	MemoryBudgetMB int `json:"memory_budget_mb,omitempty"`
	// StreamID names a durable spill store for a streamed job. A job
	// resubmitted with the same StreamID resumes from the store's
	// checkpoint (a kill loses at most one tile); anonymous streamed jobs
	// get a private store removed when they finish.
	StreamID string `json:"stream_id,omitempty"`
}

// NormSpec is a validated, fully defaulted spec in the executor's types.
type NormSpec struct {
	Domain grid.Size
	// Solver is the canonical catalog name (never empty after Normalize).
	Solver              string
	Steps               int
	Strategy            exec.Strategy
	Processors          int
	Placement           grid.PlacementPolicy
	Variant             decomp.Variant
	Boundary            stencil.Boundary
	CoreIslands         bool
	KSteps              int
	IORD                int
	Unlimited           bool
	BlockI              int
	DisableFusion       bool
	DisableHaloExchange bool
	Pin                 bool
	Profile             bool
	TimeoutMs           int
	Streamed            bool
	MemoryBudgetMB      int
	StreamID            string
}

// ParseGrid parses "NIxNJxNK", rejecting non-positive extents and products
// over MaxStreamCells (the largest any job class accepts) with a typed
// *ErrGridTooLarge. It is the shared -grid validator of mpdata-sim and the
// server; the tighter resident bound is applied by Normalize, which knows
// whether the job is streamed.
func ParseGrid(s string) (grid.Size, error) {
	var ni, nj, nk int
	var tail string
	in := strings.ToLower(strings.TrimSpace(s))
	if n, err := fmt.Sscanf(in, "%dx%dx%d%s", &ni, &nj, &nk, &tail); (err != nil && n < 3) || tail != "" {
		return grid.Size{}, fmt.Errorf("grid must look like 128x64x16, got %q", s)
	}
	sz := grid.Sz(ni, nj, nk)
	if !sz.Valid() {
		return grid.Size{}, fmt.Errorf("grid extents must be positive: %s", s)
	}
	// Bound each extent before multiplying so the product cannot overflow.
	if int64(ni) > MaxStreamCells || int64(nj) > MaxStreamCells || int64(nk) > MaxStreamCells ||
		int64(ni)*int64(nj) > MaxStreamCells || int64(ni)*int64(nj)*int64(nk) > MaxStreamCells {
		cells := int64(-1) // overflowed past any representable product
		if int64(ni) <= MaxStreamCells && int64(nj) <= MaxStreamCells && int64(ni)*int64(nj) <= MaxStreamCells {
			cells = int64(ni) * int64(nj) * int64(nk)
		}
		return grid.Size{}, &ErrGridTooLarge{Grid: s, Cells: cells, Limit: MaxStreamCells, Streamed: true}
	}
	return sz, nil
}

// ParseStrategy maps the spec's strategy names (and the CLI aliases) to the
// executor's enum. An empty string selects the islands strategy.
func ParseStrategy(s string) (exec.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "original":
		return exec.Original, nil
	case "3+1d", "(3+1)d", "blocked":
		return exec.Plus31D, nil
	case "islands", "islands-of-cores", "":
		return exec.IslandsOfCores, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (original, 3+1d, islands)", s)
	}
}

// ParsePlacement maps the placement names to the page placement policies.
// An empty string selects parallel first touch.
func ParsePlacement(s string) (grid.PlacementPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "serial", "first-touch-serial":
		return grid.FirstTouchSerial, nil
	case "parallel", "first-touch", "first-touch-parallel", "":
		return grid.FirstTouchParallel, nil
	case "interleaved":
		return grid.Interleaved, nil
	default:
		return 0, fmt.Errorf("unknown placement %q (serial, parallel, interleaved)", s)
	}
}

// ParseVariant maps "A"/"B" to the 1D island mapping variant ("" = A).
func ParseVariant(s string) (decomp.Variant, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "A", "":
		return decomp.VariantA, nil
	case "B":
		return decomp.VariantB, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (A = i dimension, B = j)", s)
	}
}

// ParseBoundary maps "clamp"/"periodic" to the boundary condition ("" =
// clamp).
func ParseBoundary(s string) (stencil.Boundary, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "clamp", "":
		return stencil.Clamp, nil
	case "periodic":
		return stencil.Periodic, nil
	default:
		return 0, fmt.Errorf("unknown boundary %q (clamp, periodic)", s)
	}
}

// ValidateSteps rejects non-positive and absurd step counts — the shared
// -steps validator of mpdata-sim and the server.
func ValidateSteps(steps int) error {
	if steps <= 0 {
		return fmt.Errorf("steps must be positive, got %d", steps)
	}
	if steps > MaxSteps {
		return fmt.Errorf("steps %d exceeds the supported maximum %d", steps, MaxSteps)
	}
	return nil
}

// ValidateProcessors rejects non-positive and out-of-range socket counts —
// the shared -p validator (1..14 UV 2000 sockets, 8 workers each).
func ValidateProcessors(p int) error {
	if p <= 0 {
		return fmt.Errorf("processors (worker teams) must be positive, got %d", p)
	}
	if p > MaxProcessors {
		return fmt.Errorf("processors %d exceeds the UV 2000's %d sockets", p, MaxProcessors)
	}
	return nil
}

// Normalize validates the spec and resolves every field to the executor's
// types, applying the documented defaults. CLI and server reject bad specs
// through this single path, so both produce identical diagnostics.
func (s Spec) Normalize() (NormSpec, error) {
	var n NormSpec
	var err error
	if n.Domain, err = ParseGrid(s.Grid); err != nil {
		return n, err
	}
	entry, err := solver.Lookup(s.Solver)
	if err != nil {
		return n, err
	}
	n.Solver = entry.Name
	if entry.CheckDomain != nil {
		if err := entry.CheckDomain(n.Domain); err != nil {
			return n, err
		}
	}
	n.Streamed = s.Streamed
	if n.Streamed && !entry.Streamable() {
		return n, fmt.Errorf("solver %q does not support streamed jobs (no plane seeding); run it resident", entry.Name)
	}
	cells := int64(n.Domain.NI) * int64(n.Domain.NJ) * int64(n.Domain.NK)
	if !n.Streamed && cells > MaxGridCells {
		return n, &ErrGridTooLarge{Grid: s.Grid, Cells: cells, Limit: MaxGridCells}
	}
	if err = ValidateSteps(s.Steps); err != nil {
		return n, err
	}
	n.Steps = s.Steps
	if n.Strategy, err = ParseStrategy(s.Strategy); err != nil {
		return n, err
	}
	n.Processors = s.Processors
	if n.Processors == 0 {
		n.Processors = 2
	}
	if err = ValidateProcessors(n.Processors); err != nil {
		return n, err
	}
	if n.Placement, err = ParsePlacement(s.Placement); err != nil {
		return n, err
	}
	if n.Variant, err = ParseVariant(s.Variant); err != nil {
		return n, err
	}
	if n.Boundary, err = ParseBoundary(s.Boundary); err != nil {
		return n, err
	}
	if s.CoreIslands && n.Strategy != exec.IslandsOfCores {
		return n, fmt.Errorf("core_islands requires the islands strategy")
	}
	n.CoreIslands = s.CoreIslands
	if s.KSteps < 0 {
		return n, fmt.Errorf("ksteps must be non-negative, got %d", s.KSteps)
	}
	n.KSteps = s.KSteps
	if n.KSteps == 0 {
		n.KSteps = 1
	}
	if n.KSteps > 1 {
		if n.Strategy != exec.IslandsOfCores {
			return n, fmt.Errorf("ksteps > 1 requires the islands strategy")
		}
		if n.Steps%n.KSteps != 0 {
			return n, fmt.Errorf("steps %d is not a multiple of ksteps %d (served jobs advance whole k-step blocks)", n.Steps, n.KSteps)
		}
	}
	if !entry.MPDATAOptions {
		// The scheme knobs are MPDATA-specific; a non-default value on
		// another solver is a misdirected request, not a silent no-op.
		if s.IORD != 0 {
			return n, fmt.Errorf("iord applies only to the mpdata solver, not %q", entry.Name)
		}
		if s.Unlimited {
			return n, fmt.Errorf("unlimited applies only to the mpdata solver, not %q", entry.Name)
		}
	} else {
		n.IORD = s.IORD
		if n.IORD == 0 {
			n.IORD = 2
		}
		if n.IORD < 1 || n.IORD > 4 {
			return n, fmt.Errorf("iord must be 1..4, got %d", s.IORD)
		}
		n.Unlimited = s.Unlimited
	}
	if s.BlockI < 0 {
		return n, fmt.Errorf("block_i must be non-negative, got %d", s.BlockI)
	}
	n.BlockI = s.BlockI
	n.DisableFusion = s.DisableFusion
	n.DisableHaloExchange = s.DisableHaloExchange
	n.Pin = s.Pin
	n.Profile = s.Profile
	if s.TimeoutMs < 0 {
		return n, fmt.Errorf("timeout_ms must be non-negative, got %d", s.TimeoutMs)
	}
	n.TimeoutMs = s.TimeoutMs
	if s.MemoryBudgetMB < 0 {
		return n, fmt.Errorf("memory_budget_mb must be non-negative, got %d", s.MemoryBudgetMB)
	}
	if err := validateStreamID(s.StreamID); err != nil {
		return n, err
	}
	if !n.Streamed {
		if s.MemoryBudgetMB != 0 {
			return n, fmt.Errorf("memory_budget_mb applies only to streamed jobs")
		}
		if s.StreamID != "" {
			return n, fmt.Errorf("stream_id applies only to streamed jobs")
		}
	}
	n.MemoryBudgetMB = s.MemoryBudgetMB
	n.StreamID = s.StreamID
	if n.Streamed {
		// Streamed jobs derive their temporal factor k from the memory
		// budget (the tile engines' k is the residency k, not the spec's),
		// so an explicit ksteps is a contradiction, not a knob.
		if s.KSteps > 1 {
			return n, fmt.Errorf("ksteps does not apply to streamed jobs (the residency picker derives k from the memory budget)")
		}
		return n, nil
	}
	// With every field resolved, reject a temporal-blocking factor the
	// compiled schedule would silently drop to 1 — same check and error
	// text as mpdata-sim -ksteps.
	if err := n.CheckKSteps(); err != nil {
		return n, err
	}
	return n, nil
}

// validateStreamID bounds a durable stream store name to a filesystem-safe
// charset — it becomes a directory name under the server's spill root.
func validateStreamID(id string) error {
	if len(id) > 64 {
		return fmt.Errorf("stream_id longer than 64 characters")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("stream_id may use only letters, digits, '.', '_' and '-', got %q", id)
		}
	}
	if id == "." || id == ".." {
		return fmt.Errorf("stream_id %q is not a valid store name", id)
	}
	return nil
}

// Validate checks the spec without returning the normalized form.
func (s Spec) Validate() error {
	_, err := s.Normalize()
	return err
}

// StrategyName is the metrics/report label of the normalized strategy
// ("islands+core-islands" when the §6 extension is on).
func (n NormSpec) StrategyName() string {
	name := n.Strategy.String()
	if n.CoreIslands {
		name += "+core-islands"
	}
	return name
}

// CacheKey identifies a compiled runner: every spec field that shapes the
// compiled schedule, the environments or the halo geometry — KSteps
// included, since the temporal block structure, widened halo shells and
// inner-swap items are all compiled in. Steps, Profile and TimeoutMs are
// deliberately excluded — a cached runner advances one k-step block (one
// step when KSteps <= 1) per dispatch, so jobs of any length (and any
// deadline) reuse it.
type CacheKey struct {
	Domain grid.Size
	// Solver keys the cache (and the fleet router's affinity hash, which
	// hashes the whole key): engines compile one solver's program and are
	// never shared across catalog entries.
	Solver              string
	Strategy            exec.Strategy
	Processors          int
	Placement           grid.PlacementPolicy
	Variant             decomp.Variant
	Boundary            stencil.Boundary
	CoreIslands         bool
	KSteps              int
	IORD                int
	Unlimited           bool
	BlockI              int
	DisableFusion       bool
	DisableHaloExchange bool
	// Streamed jobs never share an engine with resident jobs of the same
	// geometry (their engine is a tile streamer, not a whole-domain
	// runner), and two streamed jobs share one only for the same store and
	// budget — hence all three fields key the cache.
	Streamed       bool
	MemoryBudgetMB int
	StreamID       string
}

// Key returns the schedule-cache key of the normalized spec.
func (n NormSpec) Key() CacheKey {
	return CacheKey{
		Domain:              n.Domain,
		Solver:              n.Solver,
		Strategy:            n.Strategy,
		Processors:          n.Processors,
		Placement:           n.Placement,
		Variant:             n.Variant,
		Boundary:            n.Boundary,
		CoreIslands:         n.CoreIslands,
		KSteps:              n.KSteps,
		IORD:                n.IORD,
		Unlimited:           n.Unlimited,
		BlockI:              n.BlockI,
		DisableFusion:       n.DisableFusion,
		DisableHaloExchange: n.DisableHaloExchange,
		Streamed:            n.Streamed,
		MemoryBudgetMB:      n.MemoryBudgetMB,
		StreamID:            n.StreamID,
	}
}

// ExecConfig builds the executor configuration of the normalized spec with
// the runner compiled for one dispatch unit per Run: one k-step block under
// temporal blocking, one step otherwise. Progress, deadlines and engine
// reuse all meet between dispatches.
func (n NormSpec) ExecConfig() (exec.Config, error) {
	m, err := topology.UV2000(n.Processors)
	if err != nil {
		return exec.Config{}, err
	}
	return exec.Config{
		Machine:             m,
		Strategy:            n.Strategy,
		Placement:           n.Placement,
		Variant:             n.Variant,
		Boundary:            n.Boundary,
		Steps:               max(n.KSteps, 1),
		BlockI:              n.BlockI,
		CoreIslands:         n.CoreIslands,
		KSteps:              n.KSteps,
		DisableFusion:       n.DisableFusion,
		DisableHaloExchange: n.DisableHaloExchange,
	}, nil
}

// StepsPerDispatch is the number of time steps one engine Step advances: the
// temporal block size, or 1 without temporal blocking.
func (n NormSpec) StepsPerDispatch() int { return max(n.KSteps, 1) }

// SolverEntry resolves the spec's catalog entry. Normalize canonicalized the
// name, so a lookup failure on a normalized spec is a programming error.
func (n NormSpec) SolverEntry() (*solver.Entry, error) {
	return solver.Lookup(n.Solver)
}

// SolverOptions are the spec's program-build options in the catalog's form
// (zero-valued for solvers without MPDATA options).
func (n NormSpec) SolverOptions() solver.Options {
	return solver.Options{IORD: n.IORD, Unlimited: n.Unlimited}
}

// ConfigLabel names the spec's execution configuration in the advisor's
// candidate vocabulary ("islands 1D-A k=4 b=16", ...) — the
// requested-vs-tuned label of job results and load reports.
func (n NormSpec) ConfigLabel() string {
	ec, err := n.ExecConfig()
	if err != nil {
		return n.StrategyName()
	}
	return exec.CandidateLabel(ec)
}
