package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"islands/internal/tune"
)

// ErrDraining rejects submissions while the server drains (HTTP 503).
var ErrDraining = errors.New("serve: server is draining, not admitting jobs")

// DrainAbortReason is the error reported by jobs the drain timeout aborts.
// It is part of the replica contract: the fleet router (internal/fleet)
// recognizes it as a replica fault — the job did nothing wrong, its executor
// went away — and reroutes the job to another replica instead of failing it.
const DrainAbortReason = "aborted by server drain"

// Options configures a Server. The zero value selects the documented
// defaults.
type Options struct {
	// Slots is the runner-slot capacity (0 = DefaultSlots(): host CPUs
	// divided by the cores one simulated work team occupies).
	Slots int
	// MaxCached bounds the idle compiled-runner cache (0 = max(Slots, 8)).
	MaxCached int
	// QueueDepth bounds the admission queue (0 = 64).
	QueueDepth int
	// RetryAfter is the backoff hinted to rejected clients (0 = 1s).
	RetryAfter time.Duration
	// EngineFactory builds execution engines (nil = NewSolverEngine).
	// Tests substitute deterministic or failure-injecting engines.
	EngineFactory EngineFactory
	// Tuner, when set, maps every non-pinned job to the best-known knob
	// combination for its problem class before the engine lease (NewTuner
	// builds the standard model-seeded one). Nil serves requests exactly
	// as specified.
	Tuner *tune.Tuner
	// SpillDir is the root directory for streamed jobs' tile stores
	// ("" = a "mpdata-spill" directory under the OS temp dir). Named
	// stores (spec stream_id) live at SpillDir/stream-<id> and survive
	// their jobs; anonymous stores are private and removed.
	SpillDir string
	// StreamBudgetMB is the default resident-memory budget of streamed
	// jobs whose spec leaves memory_budget_mb unset (0 = 512).
	StreamBudgetMB int
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
}

// Server is the simulation serving subsystem: the admission queue, the
// runner-slot pool with its schedule cache, the job registry and the HTTP
// API. Create with NewServer, serve Handler(), stop with Drain or Close.
type Server struct {
	opts    Options
	pool    *Pool
	queue   *queue
	metrics *Metrics
	tuner   *tune.Tuner

	mu     sync.Mutex
	jobs   map[string]*Job
	nextID uint64

	running  atomic.Int64
	draining atomic.Bool

	// diskBWBits is an EWMA of the disk throughput observed by completed
	// streamed jobs (float64 bits; 0 = no observation yet). It feeds the
	// residency picker, so the tile-width/k trade tracks the actual store
	// device instead of the model's default.
	diskBWBits atomic.Uint64

	// jobsWG tracks admitted jobs until their terminal transition; drain
	// waits on it. dispatchWG tracks the dispatcher goroutines.
	jobsWG     sync.WaitGroup
	dispatchWG sync.WaitGroup

	closeOnce sync.Once
}

// NewServer builds the subsystem and starts one dispatcher per runner slot.
func NewServer(opts Options) *Server {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Server{
		opts:    opts,
		queue:   newQueue(opts.QueueDepth, opts.RetryAfter),
		metrics: newMetrics(),
		tuner:   opts.Tuner,
		jobs:    make(map[string]*Job),
	}
	factory := opts.EngineFactory
	if factory == nil {
		// The default factory routes streamed specs to the out-of-core
		// engine; a custom factory (tests) owns the whole decision.
		factory = func(ns NormSpec) (Engine, error) {
			if ns.Streamed {
				return newStreamEngine(s, ns)
			}
			return NewSolverEngine(ns)
		}
	}
	s.pool = NewPool(opts.Slots, opts.MaxCached, factory)
	for i := 0; i < s.pool.Capacity(); i++ {
		s.dispatchWG.Add(1)
		go s.dispatch()
	}
	return s
}

// Metrics exposes the server's counters (tests assert on them directly).
func (s *Server) Metrics() *Metrics { return s.metrics }

// spillDir resolves the streamed jobs' store root.
func (s *Server) spillDir() string {
	if s.opts.SpillDir != "" {
		return s.opts.SpillDir
	}
	return filepath.Join(os.TempDir(), "mpdata-spill")
}

// streamBudgetMB resolves the default streamed-job memory budget.
func (s *Server) streamBudgetMB() int {
	if s.opts.StreamBudgetMB > 0 {
		return s.opts.StreamBudgetMB
	}
	return 512
}

// diskBWEstimate returns the live disk-bandwidth EWMA in bytes/s (0 before
// any streamed job completed — the residency picker then uses the model's
// default device).
func (s *Server) diskBWEstimate() float64 {
	return math.Float64frombits(s.diskBWBits.Load())
}

// observeDiskBW folds one streamed job's measured store throughput into the
// EWMA (alpha 0.3: a few jobs converge, one outlier does not whipsaw the
// residency picker).
func (s *Server) observeDiskBW(bw float64) {
	if bw <= 0 {
		return
	}
	for {
		old := s.diskBWBits.Load()
		prev := math.Float64frombits(old)
		next := bw
		if prev > 0 {
			next = 0.7*prev + 0.3*bw
		}
		if s.diskBWBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// ReplicaStats is the JSON payload of GET /v1/stats: the cheap load/health
// snapshot a fleet router polls to maintain membership and steer
// work-stealing. A replica reporting Draining no longer accepts jobs and
// should leave the placement ring.
type ReplicaStats struct {
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	SlotsBusy     int    `json:"slots_busy"`
	SlotsTotal    int    `json:"slots_total"`
	Running       int    `json:"running"`
	Draining      bool   `json:"draining"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	Succeeded     uint64 `json:"succeeded"`
	Failed        uint64 `json:"failed"`
}

// Stats snapshots the replica for the fleet router.
func (s *Server) Stats() ReplicaStats {
	ps := s.pool.Stats()
	return ReplicaStats{
		QueueDepth:    s.queue.depth(),
		QueueCapacity: s.queue.maxDepth,
		SlotsBusy:     ps.Busy,
		SlotsTotal:    ps.Capacity,
		Running:       int(s.running.Load()),
		Draining:      s.draining.Load(),
		CacheHits:     ps.Hits,
		CacheMisses:   ps.Misses,
		Succeeded:     s.metrics.Succeeded.Load(),
		Failed:        s.metrics.Failed.Load(),
	}
}

// PoolStats snapshots the slot pool.
func (s *Server) PoolStats() PoolStats { return s.pool.Stats() }

// QueueDepth returns the number of jobs waiting for admission.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// Submit validates a spec and admits it as a queued job. It returns
// ErrDraining while the server drains, an *ErrQueueFull when the queue is at
// depth, or a validation error for a bad spec.
func (s *Server) Submit(spec Spec) (*Job, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%08d", s.nextID)
	j := newJob(id, spec, ns, time.Now())
	s.jobs[id] = j
	s.mu.Unlock()

	s.jobsWG.Add(1)
	if err := s.queue.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.jobsWG.Done()
		if qf := (*ErrQueueFull)(nil); errors.As(err, &qf) {
			s.metrics.JobRejected(ns.Solver)
		}
		return nil, err
	}
	s.metrics.JobSubmitted(ns.Solver)
	return j, nil
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Status returns a job's API snapshot with its live queue position.
func (s *Server) Status(j *Job) JobStatus {
	st := j.status()
	if st.State == StateQueued {
		st.QueuePosition = s.queue.position(j)
	}
	return st
}

// Cancel requests a job's cancellation: queued jobs are withdrawn
// immediately, running jobs are aborted mid-step through the barrier-abort
// path and finish as canceled.
func (s *Server) Cancel(j *Job, reason string) {
	j.Cancel(reason)
	if s.queue.remove(j) {
		s.finishJob(j, StateCanceled, j.cancelCause(), nil)
	}
}

// dispatch is one slot's job loop: pop, lease an engine, execute, release.
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	for {
		j, skipped := s.queue.pop()
		for _, sk := range skipped {
			s.finishJob(sk, sk.terminalOnCancel(), sk.cancelCause(), nil)
		}
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one admitted job on a leased engine.
func (s *Server) runJob(j *Job) {
	if !j.setRunning(time.Now()) {
		s.finishJob(j, j.terminalOnCancel(), j.cancelCause(), nil)
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	queueWait := j.started.Sub(j.created)
	// With a tuner, the engine lease happens under the tuned (canonical)
	// spec: the cache stores the best-known configuration for the class,
	// never the same physical engine under requested and tuned keys.
	tuned, dec := s.tuneSpec(j.ns)
	lease, err := s.pool.Acquire(j.ctx, tuned)
	if err != nil {
		if j.ctx.Err() != nil {
			s.finishJob(j, j.terminalOnCancel(), j.cancelCause(), nil)
		} else {
			s.finishJob(j, StateFailed, err.Error(), nil)
		}
		return
	}
	reuse, state, errMsg, result := s.executeJob(j, lease, tuned, dec, queueWait)
	// Release before the terminal transition: once a job reports done, a
	// healthy engine is already back in the cache, so an immediate follow-up
	// job with the same key hits instead of compiling a duplicate.
	lease.Release(reuse)
	s.finishJob(j, state, errMsg, result)
}

// tuneSpec maps a job's spec to the configuration it should run as. Without
// a tuner (or for a pinned job) the spec passes through untouched; with one,
// even an identity decision canonicalizes the knobs (auto BlockI becomes its
// explicit width) so cache keys cannot alias.
func (s *Server) tuneSpec(ns NormSpec) (NormSpec, *tune.Decision) {
	if s.tuner == nil {
		return ns, nil
	}
	if ns.Streamed {
		// A streamed job's tunable — the residency — is picked by its
		// engine under the memory budget; the knob tuner has nothing to
		// decide (and must not rewrite the cache key away from the store).
		return ns, nil
	}
	if ns.Pin {
		s.metrics.TunerPinned.Add(1)
		return ns, nil
	}
	req, ok := requestedKnobs(ns)
	if !ok {
		return ns, nil
	}
	dec := s.tuner.Decide(classOf(ns), req, ns.Steps)
	return applyKnobs(ns, dec.Knobs), &dec
}

// executeJob drives the engine through the job's steps, reporting progress
// and watching the job context so a cancellation or deadline aborts an
// in-flight step through the engine's barrier-abort path. It returns whether
// the engine stayed healthy (reusable) plus the job's terminal transition,
// which the caller performs after releasing the lease. tuned is the spec the
// engine was leased under (identical to j.ns without a tuner); dec is the
// tuner's decision, nil when no tuner decided for this job.
func (s *Server) executeJob(j *Job, lease *Lease, tuned NormSpec, dec *tune.Decision, queueWait time.Duration) (reuse bool, state JobState, errMsg string, result *Result) {
	eng := lease.Engine()
	if err := eng.Reset(); err != nil {
		return false, StateFailed, err.Error(), nil
	}
	if j.ns.Profile {
		eng.SetProfiling(true)
	}

	// The watcher aborts the engine when the job context fires mid-step;
	// stopped (and joined) before the engine's fate is decided, so a
	// completion cannot race an abort into a "healthy" release.
	watcherStop := make(chan struct{})
	var watcherWG sync.WaitGroup
	watcherWG.Add(1)
	go func() {
		defer watcherWG.Done()
		select {
		case <-j.ctx.Done():
			eng.Abort(j.cancelCause())
		case <-watcherStop:
		}
	}()

	label := tuned.StrategyName()
	var runErr error
	start := time.Now()
	steps := 0
	se, streamed := eng.(StreamEngine)
	if streamed {
		// A streamed engine's dispatch unit is one whole sweep (every
		// tile one residency); progress is durable-step-granular, with
		// tile-granular events forwarded from the streamer. The latency
		// histogram uses the dedicated "streamed" label — a sweep is not
		// comparable to a resident step.
		steps = se.StepsDone() // a resumed store may already be partly done
		se.SetProgress(func(p TileProgress) {
			s.metrics.StreamTiles.Add(1)
			j.progressTiles(p.StepsDone, p.Sweep*p.Tiles+p.Tile+1, p.Sweeps*p.Tiles)
		})
		for !se.Done() {
			if j.ctx.Err() != nil {
				break
			}
			t0 := time.Now()
			if runErr = eng.Step(); runErr != nil {
				break
			}
			s.metrics.ObserveStep(streamStepLabel, time.Since(t0))
			steps = se.StepsDone()
			j.progress(steps)
		}
	} else {
		// One engine Step is one dispatch unit: a whole k-step block under
		// temporal blocking (Normalize — and the tuner's feasibility filter —
		// guarantee the stride divides Steps).
		stride := tuned.StepsPerDispatch()
		for st := 0; st < j.ns.Steps; st += stride {
			if j.ctx.Err() != nil {
				break
			}
			t0 := time.Now()
			if runErr = eng.Step(); runErr != nil {
				break
			}
			s.metrics.ObserveStep(label, time.Since(t0))
			steps = st + stride
			j.progress(steps)
		}
	}
	wall := time.Since(start)
	close(watcherStop)
	watcherWG.Wait()

	switch {
	case j.ctx.Err() != nil:
		// Canceled or expired — even if the abort raced a completed step,
		// the engine's barriers may be poisoned, so never reuse it.
		return false, j.terminalOnCancel(), j.cancelCause(), nil
	case runErr != nil:
		// Worker failures surface verbatim: the error carries the
		// original kernel panic (exec's sticky failure path).
		return false, StateFailed, runErr.Error(), nil
	}

	info := eng.Info()
	result = &Result{
		Checksums:       eng.Checksums(),
		Strategy:        label,
		Steps:           steps,
		WallMs:          float64(wall.Nanoseconds()) / 1e6,
		QueueMs:         float64(queueWait.Nanoseconds()) / 1e6,
		CacheHit:        lease.Hit,
		RequestedConfig: j.ns.ConfigLabel(),
		KSteps:          info.KSteps,
		KStepFallback:   info.KStepFallback,
	}
	if steps > 0 {
		result.StepMsAvg = result.WallMs / float64(steps)
	}
	if dec != nil {
		result.TunedConfig = tuned.ConfigLabel()
		result.Tuned = dec.Tuned
		result.Explored = dec.Explore
		result.TuneReason = dec.Reason
	}
	var imbalance float64
	if j.ns.Profile {
		result.Profile = profileReport(label, eng)
		if prof := eng.Profile(); prof != nil {
			imbalance = prof.Summary().MaxImbalancePct
		}
		eng.SetProfiling(false)
	}
	if s.tuner != nil && dec != nil && steps > 0 {
		s.tuner.Observe(classOf(j.ns), tune.Observation{
			Knobs:        dec.Knobs,
			StepSeconds:  wall.Seconds() / float64(steps),
			ImbalancePct: imbalance,
			Steps:        steps,
			Explored:     dec.Explore,
		})
	}
	if streamed {
		rep := se.Report()
		result.Stream = rep
		if rep != nil {
			s.metrics.StreamJobs.Add(1)
			s.metrics.StreamBytesRead.Add(uint64(rep.BytesRead))
			s.metrics.StreamBytesWritten.Add(uint64(rep.BytesWritten))
			if rep.ResumedSteps > 0 {
				s.metrics.StreamResumed.Add(1)
			}
			s.observeDiskBW(rep.DiskBWBytes)
		}
		// Never cache a streamed engine: the store's checkpoint, not a
		// warm engine, is what makes the follow-up job cheap, and Close
		// is what removes an anonymous store.
		return false, StateSucceeded, "", result
	}
	return true, StateSucceeded, "", result
}

// terminalOnCancel maps a canceled job to its terminal state: canceled for
// client cancellations and deadlines, failed for drain-killed survivors (the
// drain contract: abort survivors and report them failed).
func (j *Job) terminalOnCancel() JobState {
	if j.drainKilled.Load() {
		return StateFailed
	}
	return StateCanceled
}

// finishJob performs the terminal transition and bumps the counters exactly
// once.
func (s *Server) finishJob(j *Job, state JobState, errMsg string, result *Result) {
	if !j.finish(state, errMsg, result, time.Now()) {
		return
	}
	switch state {
	case StateSucceeded:
		s.metrics.JobSucceeded(j.ns.Solver)
	case StateFailed:
		s.metrics.JobFailed(j.ns.Solver)
		s.opts.Logf("job %s failed: %s", j.ID, errMsg)
	case StateCanceled:
		s.metrics.JobCanceled(j.ns.Solver)
	}
	s.jobsWG.Done()
}

// Drain performs the graceful shutdown contract: stop admitting, let queued
// and running jobs finish within the timeout, then abort survivors (reported
// failed) and wait for them to unwind. It returns nil when every job reached
// a terminal state.
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		survivors := 0
		s.mu.Lock()
		jobs := make([]*Job, 0, len(s.jobs))
		for _, j := range s.jobs {
			jobs = append(jobs, j)
		}
		s.mu.Unlock()
		for _, j := range jobs {
			if !j.State().Terminal() {
				survivors++
				j.drainKilled.Store(true)
				j.Cancel(DrainAbortReason)
				if s.queue.remove(j) {
					s.finishJob(j, StateFailed, DrainAbortReason, nil)
				}
			}
		}
		s.opts.Logf("drain timeout: aborted %d surviving jobs", survivors)
		// Aborted steps unwind at the next barrier; give them a bounded
		// grace period before declaring the drain failed.
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			s.shutdown()
			return fmt.Errorf("serve: drain: %d jobs did not unwind after abort", survivors)
		}
	}
	s.shutdown()
	return nil
}

// Close shuts the server down without waiting: every non-terminal job is
// canceled. Intended for tests and error paths; production uses Drain.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if !j.State().Terminal() {
			j.Cancel("server closed")
			if s.queue.remove(j) {
				s.finishJob(j, StateCanceled, "server closed", nil)
			}
		}
	}
	s.jobsWG.Wait()
	s.shutdown()
}

// shutdown stops the dispatchers and releases the pool (idempotent).
func (s *Server) shutdown() {
	s.closeOnce.Do(func() {
		s.queue.close()
		s.dispatchWG.Wait()
		s.pool.Close()
	})
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// profileReport renders the job's runtime profile in both rendered-table and
// structured form — the same per-phase breakdown mpdata-sim -profile prints.
func profileReport(label string, eng Engine) *ProfileReport {
	prof := eng.Profile()
	if prof == nil {
		return nil
	}
	rep := &ProfileReport{Table: renderProfileTable(label, prof)}
	for _, ph := range prof.Phases {
		rep.Phases = append(rep.Phases, ProfilePhase{
			Label:     ph.Label,
			ComputeMs: float64(ph.Compute.Nanoseconds()) / 1e6,
			SpinMs:    float64(ph.Spin.Nanoseconds()) / 1e6,
			ParkMs:    float64(ph.Park.Nanoseconds()) / 1e6,
		})
	}
	return rep
}

// --- HTTP API ---

// Handler returns the HTTP API:
//
//	POST /v1/jobs              submit a job spec        -> 202 JobStatus
//	GET  /v1/jobs/{id}         status + queue position  -> 200 JobStatus
//	GET  /v1/jobs/{id}/events  SSE per-step progress
//	GET  /v1/jobs/{id}/result  result once terminal     -> 200 JobStatus
//	POST /v1/jobs/{id}/cancel  cancel queued or running -> 202 JobStatus
//	GET  /v1/stats             replica load snapshot    -> 200 ReplicaStats
//	GET  /metrics              text exposition
//	GET  /healthz              200 ok / 503 draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// RetryAfterSeconds renders a backoff hint as the whole seconds of a
// Retry-After header: integer ceiling (no float drift for exact values) and
// clamped to >= 1 — "Retry-After: 0" tells clients to hammer the queue
// immediately, which is exactly what admission control exists to prevent.
// The fleet router uses the same rendering for its aggregate rejections, so
// the wire contract is identical one replica deep or N.
func RetryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		var qf *ErrQueueFull
		var tooLarge *ErrGridTooLarge
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "10")
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		case errors.As(err, &qf):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", RetryAfterSeconds(qf.RetryAfter)))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		case errors.As(err, &tooLarge):
			// 413: the domain, not the request framing, is too large. The
			// resident-class error names the streamed job class, so a
			// client holding a too-big grid knows its next move.
			writeJSON(w, http.StatusRequestEntityTooLarge, apiError{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, s.Status(j))
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, s.Status(j))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	st := s.Status(j)
	if !st.State.Terminal() {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job %s is %s, not finished", j.ID, st.State)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	s.Cancel(j, "canceled by client")
	writeJSON(w, http.StatusAccepted, s.Status(j))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, unsubscribe := j.subscribe()
	defer unsubscribe()

	writeEvent := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Opening snapshot so late subscribers see where the job stands.
	st := s.Status(j)
	if !writeEvent(Event{Type: "state", State: st.State, Step: st.Step, Steps: st.Steps, Error: st.Error}) {
		return
	}
	if st.State.Terminal() {
		writeEvent(Event{Type: "done", State: st.State, Step: st.Step, Steps: st.Steps, Error: st.Error})
		return
	}
	for {
		select {
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
			if ev.Type == "done" {
				return
			}
		case <-j.Done():
			// Flush any buffered events, then make sure a terminal
			// event is delivered even if the buffer dropped it.
			for {
				select {
				case ev := <-ch:
					if !writeEvent(ev) {
						return
					}
					if ev.Type == "done" {
						return
					}
					continue
				default:
				}
				break
			}
			st := s.Status(j)
			writeEvent(Event{Type: "done", State: st.State, Step: st.Step, Steps: st.Steps, Error: st.Error})
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	ps := s.pool.Stats()
	g := gauges{
		QueueDepth:    s.queue.depth(),
		QueueCapacity: s.queue.maxDepth,
		SlotsBusy:     ps.Busy,
		SlotsTotal:    ps.Capacity,
		CacheHits:     ps.Hits,
		CacheMisses:   ps.Misses,
		CacheSize:     ps.Idle,
		CacheEvicted:  ps.Evictions,
		Running:       int(s.running.Load()),
		Draining:      s.draining.Load(),
		StreamDiskBW:  s.diskBWEstimate(),
	}
	if s.tuner != nil {
		tc := s.tuner.Counters()
		g.TunerEnabled = true
		g.TunerDecisions = tc.Decisions
		g.TunerTuned = tc.Tuned
		g.TunerExplored = tc.Explored
		g.TunerSeedErrors = tc.SeedErrors
		g.TunerClasses = tc.Classes
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, g)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
