// Scenarios1d reproduces the paper's Fig. 1: a forward-in-time computation
// with three heterogeneous 1D stencil stages (A, B, C), parallelized over
// two CPUs in the two possible ways —
//
//	scenario 1: partition exactly, exchange boundary elements between the
//	            CPUs and synchronize after every stage;
//	scenario 2: let each CPU redundantly compute the few boundary elements
//	            it needs (islands), so the CPUs run a whole time step
//	            independently.
//
// The example counts the transfers, synchronizations and extra elements of
// both scenarios, executes both numerically to show they agree, and prints
// which scenario wins as the interconnect gets slower.
//
// Run with: go run ./examples/scenarios1d
package main

import (
	"fmt"
	"log"

	"islands/internal/decomp"
	"islands/internal/grid"
	"islands/internal/stencil"
)

func main() {
	log.SetFlags(0)
	prog := stencil.Fig1Program()
	domain := grid.Sz(16, 1, 1)
	h, err := stencil.Analyze(&prog.Program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("three heterogeneous stages (Fig. 1):")
	for s := range prog.Stages {
		st := &prog.Stages[s]
		fmt.Printf("  %s reads %s at %v\n", st.Name, st.Inputs[0].From, st.Inputs[0].Offsets)
	}

	parts := decomp.Partition1D(domain, 2, decomp.VariantA)
	fmt.Printf("\ndomain of %d elements split between CPU_A %v and CPU_B %v\n",
		domain.NI, parts[0], parts[1])

	// Scenario 1: count the boundary elements that cross between the CPUs
	// at each stage (every stage's reads that fall in the other part), and
	// one synchronization per stage.
	fmt.Println("\nscenario 1 — exchange and synchronize:")
	transfers := 0
	for s := range prog.Stages {
		st := &prog.Stages[s]
		n := 0
		for _, in := range st.Inputs {
			e := stencil.OffsetsExtent(in.Offsets)
			// Elements of the producer each CPU needs from the other
			// side of the cut (one interior boundary).
			n += e.ILo + e.IHi
		}
		transfers += n
		fmt.Printf("  stage %s: %d boundary element(s) cross the CPUs, then 1 sync\n", st.Name, n)
	}
	fmt.Printf("  total per time step: %d transfers, %d synchronizations\n", transfers, len(prog.Stages))

	// Scenario 2: islands — each CPU computes the trapezoid it needs.
	fmt.Println("\nscenario 2 — islands of cores (redundant trapezoids):")
	var extra int64
	for i, part := range parts {
		e := h.ExtraCells(part, domain)
		extra += e
		fmt.Printf("  CPU_%c recomputes %d extra element(s):", 'A'+i, e)
		for s := range prog.Stages {
			r := h.StageRegion(s, part, domain)
			fmt.Printf(" %s on [%d,%d)", prog.Stages[s].Name, r.I0, r.I1)
		}
		fmt.Println()
	}
	fmt.Printf("  total per time step: %d extra elements, 0 transfers, 1 synchronization\n", extra)

	// Execute both scenarios numerically and compare against the
	// sequential result.
	in := grid.NewField("in", domain)
	in.FillFunc(func(i, j, k int) float64 { return float64(i % 5) })
	seq := runScenario(prog, domain, in, []grid.Region{grid.WholeRegion(domain)}, h)
	islands2 := runScenario(prog, domain, in, parts, h)
	if d := grid.MaxAbsDiff(seq, islands2); d != 0 {
		log.Fatalf("scenario 2 diverged from sequential by %g", d)
	}
	fmt.Println("\nboth scenarios produce identical results (checked numerically)")

	fmt.Println("\ntrade-off: scenario 1 moves", transfers, "elements per step across the",
		"interconnect;\nscenario 2 computes", extra, "extra elements locally.",
		"On a NUMAlink-class DSM machine\nthe remote transfer costs microseconds",
		"while the extra flops cost nanoseconds —\nexactly the asymmetry the",
		"islands-of-cores approach exploits (paper §4.1).")
}

// runScenario computes one time step with the given island partition, using
// clamped boundaries, and returns the output field.
func runScenario(prog *stencil.KernelProgram, domain grid.Size, in *grid.Field,
	parts []grid.Region, h *stencil.HaloAnalysis) *grid.Field {
	out := grid.NewField("out", domain)
	for _, part := range parts {
		env, err := stencil.NewEnv(&prog.Program, domain, map[string]*grid.Field{"in": in})
		if err != nil {
			log.Fatal(err)
		}
		env.BC = stencil.Clamp
		for s, kern := range prog.Kernels {
			kern(env, h.StageRegion(s, part, domain))
		}
		grid.CopyRegion(out, env.Field(prog.Output), part)
	}
	return out
}
