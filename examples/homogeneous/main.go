// Homogeneous contrasts the paper's heterogeneous MPDATA stage graph with
// the homogeneous fused-Jacobi chains targeted by classic overlapped tiling
// (Guo et al., Zhou et al. — the related work of §1). Both run through the
// same framework: halo analysis, island trapezoids, executors, and the
// machine model. The punchline is quantitative: deep homogeneous fusion
// compounds one full halo cell per stage per side, so its redundancy dwarfs
// MPDATA's mostly-pointwise stage graph — the structural reason the paper's
// islands scale to 14 sockets while overlapped tiling stayed on one or two.
//
// Run with: go run ./examples/homogeneous
package main

import (
	"fmt"
	"log"

	"islands/internal/decomp"
	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/heat"
	"islands/internal/mpdata"
	"islands/internal/stencil"
	"islands/internal/topology"
)

func main() {
	log.SetFlags(0)
	domain := grid.Sz(1024, 512, 64)
	m, err := topology.UV2000(14)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("islands-of-cores on %v, 14 islands (variant A):\n\n", domain)
	fmt.Printf("%-34s %8s %10s %12s\n", "program", "stages", "extra [%]", "modeled [s]")

	price := func(name string, kp *stencil.KernelProgram, steps int) {
		r, err := exec.Model(exec.Config{
			Machine: m, Strategy: exec.IslandsOfCores,
			Placement: grid.FirstTouchParallel, Steps: steps,
		}, &kp.Program, domain)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %8d %10.2f %12.2f\n", name, len(kp.Stages), r.ExtraElementsPct, r.TotalTime)
	}

	for _, k := range []int{1, 4, 17} {
		kp, err := heat.NewProgram(k)
		if err != nil {
			log.Fatal(err)
		}
		// Keep total Jacobi iterations constant: fusing k per step.
		price(fmt.Sprintf("Jacobi x%d fused (homogeneous)", k), kp, 68/k)
	}
	price("MPDATA 17 stages (heterogeneous)", mpdata.NewProgram(), 50)

	// The same contrast analytically, via Table 2's metric.
	fmt.Println("\nredundant elements per interior boundary (analysis only):")
	parts := decomp.Partition1D(domain, 2, decomp.VariantA)
	for _, k := range []int{1, 4, 17} {
		kp, _ := heat.NewProgram(k)
		h, err := stencil.Analyze(&kp.Program)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Jacobi x%-3d %6.3f%%\n", k, decomp.ExtraElementsPercent(h, domain, parts))
	}
	hMP, _ := stencil.Analyze(&mpdata.NewProgram().Program)
	fmt.Printf("  MPDATA      %6.3f%%\n", decomp.ExtraElementsPercent(hMP, domain, parts))

	fmt.Println("\nreading: fusing 17 Jacobi stages costs ~8x the redundancy of MPDATA's")
	fmt.Println("17 heterogeneous stages, because every Jacobi stage widens the halo by")
	fmt.Println("a full cell while most MPDATA stages are pointwise or one-sided — the")
	fmt.Println("correlation between computation and communication the paper exposes.")
}
