// Cluster scales the islands-of-cores approach beyond one SGI UV 2000 —
// the paper's §6 plan ("we plan to study the usage of MPI for extending the
// scalability of our approach for much larger system configurations"). The
// islands abstraction needs no change: machines become graphs with slower
// inter-IRU edges, each NUMA node stays one island, and only the per-step
// synchronization and the thin input halos cross the external network.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/mpdata"
	"islands/internal/topology"
)

func main() {
	log.SetFlags(0)
	domain := grid.Sz(2048, 512, 64)
	prog := &mpdata.NewProgram().Program
	const steps = 50
	useful := exec.UsefulFlopsPerStep(prog, domain) * steps

	fmt.Printf("MPDATA %v, %d steps: islands-of-cores across UV 2000 IRUs\n\n", domain, steps)
	fmt.Printf("%-18s %8s %12s %14s %12s %10s\n",
		"machine", "sockets", "islands [s]", "Gflop/s", "% of peak", "efficiency")

	var t1 float64
	for _, cfg := range []struct{ irus, per int }{
		{1, 1}, {1, 7}, {1, 14}, {2, 14}, {4, 14},
	} {
		m, err := topology.ClusterOfUV(cfg.irus, cfg.per)
		if err != nil {
			log.Fatal(err)
		}
		r, err := exec.Model(exec.Config{
			Machine:   m,
			Strategy:  exec.IslandsOfCores,
			Placement: grid.FirstTouchParallel,
			Steps:     steps,
		}, prog, domain)
		if err != nil {
			log.Fatal(err)
		}
		p := m.NumNodes()
		if t1 == 0 {
			t1 = r.TotalTime
		}
		g := useful / r.TotalTime / 1e9
		fmt.Printf("%-18s %8d %12.2f %14.1f %11.1f%% %9.1f%%\n",
			m.Name, p, r.TotalTime, g,
			100*g*1e9/m.PeakFlops(),
			100*t1/(r.TotalTime*float64(p)))
	}

	fmt.Println("\nreading: islands stay independent within a time step, so even the")
	fmt.Println("InfiniBand hop between IRUs only carries the per-step synchronization")
	fmt.Println("and the few halo columns of the input arrays — scaling continues far")
	fmt.Println("past the single-machine configuration the paper measured.")
}
