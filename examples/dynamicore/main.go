// Dynamicore runs a toy version of the EULAG dynamic core the paper situates
// MPDATA in (§1): every time step advects a scalar with the 17-stage MPDATA
// scheme and then solves an elliptic pressure equation with preconditioned
// GCR — the two major components of the model, exercised together.
//
// The physics is deliberately minimal (a buoyancy-like forcing derived from
// the advected scalar drives the Poisson solve); the point is the coupling
// pattern: MPDATA's islands are embarrassingly parallel within a step, while
// every GCR iteration needs global reductions — the contrast that makes the
// two solvers' parallelizations different problems.
//
// Run with: go run ./examples/dynamicore
package main

import (
	"fmt"
	"log"

	"islands/internal/gcr"
	"islands/internal/grid"
	"islands/internal/mpdata"
	"islands/internal/stencil"
)

func main() {
	log.SetFlags(0)
	domain := grid.Sz(48, 48, 16)
	const steps = 20

	// Advected scalar: a warm blob in solid-body rotation.
	state := mpdata.NewState(domain)
	state.SetGaussian(32, 24, 8, 4, 1, 0.1)
	state.SetRotationVelocityZ(0.01)
	solver, err := mpdata.NewSolver(state)
	if err != nil {
		log.Fatal(err)
	}
	solver.SetBoundary(stencil.Clamp)

	// Pressure solver: preconditioned GCR(3) on the 7-point Laplacian,
	// warm-started every step from the previous pressure. (The smoother's
	// parallel form lives in the solver catalog as the "gcr" entry; the
	// Krylov loop itself is sequential by design — every iteration needs a
	// global reduction.)
	pressure := grid.NewField("p", domain)
	rhs := grid.NewField("rhs", domain)
	psolver := gcr.NewSolver(domain, gcr.Laplacian(domain), gcr.Options{
		K: 3, Tol: 1e-7, PrecondSweeps: 2,
	})

	fmt.Printf("toy dynamic core on %v: MPDATA advection + GCR pressure solve per step\n\n", domain)
	fmt.Printf("%-6s %-28s %-12s %-10s\n", "step", "scalar diagnostics", "GCR iters", "residual")
	totalIters := 0
	for s := 1; s <= steps; s++ {
		solver.Step(1)

		// Buoyancy-like forcing: vertical gradient of the scalar anomaly.
		mean := state.Psi.Sum() / float64(domain.Cells())
		rhs.FillFunc(func(i, j, k int) float64 {
			up := state.Psi.At(i, j, stencil.ClampIdx(k+1, domain.NK))
			dn := state.Psi.At(i, j, stencil.ClampIdx(k-1, domain.NK))
			return (up - dn) / 2 * (state.Psi.At(i, j, k) - mean)
		})
		res, err := psolver.Solve(pressure, rhs)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			log.Fatalf("pressure solve stalled at step %d: %+v", s, res)
		}
		totalIters += res.Iterations
		if s%5 == 0 || s == 1 {
			fmt.Printf("%-6d %-28s %-12d %.2e\n", s, mpdata.Diagnose(state.Psi).String(), res.Iterations, res.Residual)
		}
	}
	fmt.Printf("\n%d pressure iterations over %d steps (warm starts keep later solves cheap)\n",
		totalIters, steps)
	fmt.Println("MPDATA kept the scalar positive and conservative; GCR held the")
	fmt.Println("elliptic constraint — the per-step pattern of the EULAG dynamic core.")
}
