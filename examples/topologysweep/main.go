// Topologysweep explores the paper's §4.1 claim from the other side: the
// choice between scenario 1 (exchange halos, synchronize every stage — pure
// (3+1)D across the machine) and scenario 2 (islands with redundant
// computation) depends on the balance between compute speed and interconnect
// quality. The sweep prices both strategies on synthetic fully-connected
// machines whose link latency is varied across three orders of magnitude and
// reports where the crossover falls.
//
// Run with: go run ./examples/topologysweep
package main

import (
	"fmt"
	"log"

	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/mpdata"
	"islands/internal/topology"
)

func main() {
	log.SetFlags(0)
	domain := grid.Sz(512, 256, 32)
	prog := &mpdata.NewProgram().Program
	const p = 8
	const steps = 10

	fmt.Printf("MPDATA %v, %d steps, %d sockets, fully connected interconnect\n\n", domain, steps, p)
	fmt.Printf("%-12s %-10s %12s %12s %10s\n", "link BW", "latency", "(3+1)D [s]", "islands [s]", "winner")

	type point struct {
		bw  float64
		lat float64
	}
	sweep := []point{
		// From an on-die-fast fabric down to a slow commodity network.
		{200e9, 0.05e-6},
		{100e9, 0.1e-6},
		{50e9, 0.2e-6},
		{13.4e9, 0.35e-6}, // NUMAlink 6 class (the UV 2000 setting)
		{6.7e9, 0.7e-6},
		{3e9, 1.5e-6},
		{1e9, 5e-6},
	}
	var ratios []float64
	for _, pt := range sweep {
		m, err := topology.Symmetric(p, pt.bw, pt.lat)
		if err != nil {
			log.Fatal(err)
		}
		price := func(s exec.Strategy) float64 {
			r, err := exec.Model(exec.Config{
				Machine: m, Strategy: s, Placement: grid.FirstTouchParallel, Steps: steps,
			}, prog, domain)
			if err != nil {
				log.Fatal(err)
			}
			return r.TotalTime
		}
		blocked := price(exec.Plus31D)
		isl := price(exec.IslandsOfCores)
		winner := "islands"
		if blocked < isl {
			winner = "(3+1)D"
		}
		ratios = append(ratios, blocked/isl)
		fmt.Printf("%-12s %-10s %12.3f %12.3f %10s\n",
			fmt.Sprintf("%.1f GB/s", pt.bw/1e9),
			fmt.Sprintf("%.2f us", pt.lat*1e6),
			blocked, isl, winner)
	}

	fmt.Printf("\nreading: the islands' advantage grows from %.1fx on a cache-like fabric\n", ratios[0])
	fmt.Printf("to %.1fx on a slow network — across sockets, replacing communication\n", ratios[len(ratios)-1])
	fmt.Println("with redundant computation wins everywhere, and the margin widens as")
	fmt.Println("the interconnect degrades. Scenario 1 (exchange + per-stage sync) only")
	fmt.Println("pays off where transfers ride a shared cache — which is why the paper")
	fmt.Println("keeps it *inside* each island and draws the island boundary exactly at")
	fmt.Println("the socket boundary (§4.1).")
}
