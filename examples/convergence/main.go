// Convergence runs a grid-refinement study of the MPDATA variants: it
// advects a smooth profile through one full period at a sequence of
// resolutions and reports the observed order of accuracy. The deep,
// heterogeneous 17-stage graph of the paper exists precisely to buy this
// accuracy — the donor-cell pass alone is first order, each corrective pass
// raises the order.
//
// Run with: go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"islands/internal/mpdata"
	"islands/internal/validate"
)

func main() {
	log.SetFlags(0)
	resolutions := []int{32, 64, 128, 256}
	const courant = 0.5

	fmt.Printf("translation of a Gaussian through one period, Courant %.2f\n\n", courant)
	for _, c := range []struct {
		name string
		o    mpdata.Options
	}{
		{"donor-cell upwind (IORD=1)", mpdata.Options{IORD: 1}},
		{"MPDATA (IORD=2, non-oscillatory — the paper's 17 stages)", mpdata.DefaultOptions()},
		{"MPDATA (IORD=2, unlimited, 11 stages)", mpdata.Options{IORD: 2}},
		{"MPDATA (IORD=3, non-oscillatory, 30 stages)", mpdata.Options{IORD: 3, NonOscillatory: true}},
	} {
		pts, order, err := validate.TranslationStudy(c.o, resolutions, courant)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(validate.Report(c.name, pts, order))
		fmt.Println()
	}
	fmt.Println("the corrective passes raise the observed order from ~1 toward 2 and")
	fmt.Println("beyond — the accuracy the islands-of-cores approach makes affordable")
	fmt.Println("on SMP/NUMA machines by keeping all 17+ stages cache-resident and")
	fmt.Println("socket-local.")
}
