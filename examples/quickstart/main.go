// Quickstart: solve a 3D advection problem with MPDATA using the
// islands-of-cores strategy, then compare the modeled execution time of all
// three strategies on a simulated 8-socket SGI UV 2000.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"islands"
)

func main() {
	log.SetFlags(0)
	domain := islands.Sz(96, 64, 16)
	cfg := islands.Config{
		Processors: 4,
		Strategy:   islands.IslandsOfCores,
		Placement:  islands.FirstTouchParallel,
		Boundary:   islands.Clamp,
		Steps:      25,
	}

	// 1. Real computation: a Gaussian blob rotating around the vertical
	// axis, advanced 25 steps by the 17-stage MPDATA scheme, executed by
	// four 8-core islands with redundant boundary trapezoids.
	sim, err := islands.NewSimulation(domain, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.State.SetGaussian(64, 32, 8, 5, 1, 0.05)
	sim.State.SetRotationVelocityZ(0.005)
	massBefore := sim.State.Psi.Sum()
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d MPDATA steps on %v with %d islands\n", cfg.Steps, domain, cfg.Processors)
	fmt.Printf("  mass: %.6f -> %.6f, min: %.3e (positive definite)\n",
		massBefore, sim.State.Psi.Sum(), sim.State.Psi.Min())

	// 2. Performance prediction on the paper's machine, all strategies.
	fmt.Println("\nmodeled execution on the simulated UV 2000 (same configuration):")
	for _, s := range []islands.Strategy{islands.Original, islands.Plus31D, islands.IslandsOfCores} {
		c := cfg
		c.Strategy = s
		pred, err := islands.Predict(domain, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18v %8.4f s   %6.1f Gflop/s   %4.1f%% of peak\n",
			s, pred.Time, pred.SustainedGflops, pred.UtilizationPct)
	}
}
