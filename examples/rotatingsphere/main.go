// Rotating sphere: the classic solid-body rotation benchmark for advection
// schemes. A uniform sphere is carried through a full revolution around the
// domain's vertical axis; a perfect scheme returns it to the starting
// position unchanged. The example reports conservation, positivity,
// non-oscillatory bounds and the shape error of the 17-stage non-oscillatory
// MPDATA versus first-order upwind (MPDATA's first pass alone), and verifies
// that the parallel islands execution reproduces the sequential result.
//
// Run with: go run ./examples/rotatingsphere
package main

import (
	"fmt"
	"log"
	"math"

	"islands"
)

func main() {
	log.SetFlags(0)
	domain := islands.Sz(64, 64, 8)
	omega := 0.01 // angular Courant number per step
	steps := int(math.Round(2 * math.Pi / omega))

	run := func(strategy islands.Strategy, processors int) *islands.Simulation {
		sim, err := islands.NewSimulation(domain, islands.Config{
			Processors: processors,
			Strategy:   strategy,
			Boundary:   islands.Clamp,
			Steps:      steps,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Sphere of radius 6 centered 16 cells right of the axis.
		sim.State.SetSphere(48, 32, 4, 6, 2, 0.02)
		sim.State.SetRotationVelocityZ(omega)
		if c := sim.State.MaxCourant(); c > 1 {
			log.Fatalf("unstable configuration: max Courant %.3f", c)
		}
		if err := sim.Run(); err != nil {
			log.Fatal(err)
		}
		return sim
	}

	fmt.Printf("solid-body rotation: %v grid, omega=%.3f, %d steps (one revolution)\n",
		domain, omega, steps)

	initial, err := islands.NewSimulation(domain, islands.Config{
		Processors: 1, Strategy: islands.Original, Boundary: islands.Clamp, Steps: 1})
	if err != nil {
		log.Fatal(err)
	}
	initial.State.SetSphere(48, 32, 4, 6, 2, 0.02)
	exact := initial.State.Psi.Clone()

	seq := run(islands.Original, 1)
	par := run(islands.IslandsOfCores, 4)

	if d := maxAbsDiff(seq.State.Psi.Data, par.State.Psi.Data); d != 0 {
		log.Fatalf("islands execution diverged from sequential by %g", d)
	}
	fmt.Println("islands(P=4) result is bit-identical to the sequential run")

	mass0, mass1 := exact.Sum(), seq.State.Psi.Sum()
	fmt.Printf("mass conservation:   %.6f -> %.6f (drift %.2e)\n",
		mass0, mass1, (mass1-mass0)/mass0)
	fmt.Printf("positivity:          min = %.3e (initial background 0.02)\n", seq.State.Psi.Min())
	fmt.Printf("non-oscillatory:     max = %.6f (initial max 2.0)\n", seq.State.Psi.Max())

	var l2 float64
	for i, v := range seq.State.Psi.Data {
		d := v - exact.Data[i]
		l2 += d * d
	}
	l2 = math.Sqrt(l2 / float64(len(exact.Data)))
	fmt.Printf("shape error after a full revolution: L2 = %.4f\n", l2)
	fmt.Println("(first-order upwind smears the sphere to a fraction of its height;")
	fmt.Println(" the corrective pass keeps the profile — compare peak values above)")
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
