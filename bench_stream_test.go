package islands

// Out-of-core streaming benchmarks (docs/STREAMING.md): the same domain and
// step count advanced three ways —
//
//	BenchmarkStreamResident         — one whole-domain tile (TilePlanes=0),
//	                                  the in-memory baseline through the
//	                                  store machinery
//	BenchmarkStreamTiled            — many budget-sized tiles with the
//	                                  double-buffered prefetch pipeline
//	BenchmarkStreamTiledNoPrefetch  — the same tiling with load, compute
//	                                  and writeback serialized (ablation)
//
// The figure of merit is cells/s; the tiled arms also report their
// compute/I-O overlap efficiency. The prefetch arm existing to beat the
// serial arm is the point of the pipeline, and BENCH_compute.json records
// both so the gap is reviewable over time.
//
// These names deliberately do not share the ^BenchmarkCompute prefix: the CI
// bench-smoke gate fails on allocs/op > 0, a compiled-schedule invariant the
// streaming path does not have (tile loads allocate by design).

import (
	"testing"

	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/stencil"
	"islands/internal/stream"
	"islands/internal/topology"
)

// streamBench runs the standard problem through a fresh tile store per
// iteration. The domain comfortably fits in memory — the benchmark isolates
// the streaming machinery's overhead and overlap, not real disk pressure.
func streamBench(b *testing.B, tilePlanes int, noPrefetch bool) {
	b.Helper()
	domain := grid.Sz(192, 32, 16)
	const steps = 4
	m, err := topology.UV2000(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exec.Config{
		Machine: m, Strategy: exec.Original,
		Boundary: stencil.Clamp, Steps: steps, KSteps: 1, BlockI: 16,
	}
	var last stream.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := stream.New(stream.Options{
			Dir:        b.TempDir(),
			Exec:       cfg,
			Domain:     domain,
			TilePlanes: tilePlanes,
			NoPrefetch: noPrefetch,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		last = s.Stats()
		if err := s.Remove(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(domain.Cells())*steps*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	if tilePlanes > 0 {
		b.ReportMetric(last.OverlapEfficiency()*100, "overlap-%")
		b.ReportMetric(float64(last.Tiles), "tiles")
	}
}

func BenchmarkStreamResident(b *testing.B)        { streamBench(b, 0, false) }
func BenchmarkStreamTiled(b *testing.B)           { streamBench(b, 32, false) }
func BenchmarkStreamTiledNoPrefetch(b *testing.B) { streamBench(b, 32, true) }
