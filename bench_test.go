package islands

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable1*    — Table 1: original (serial/first-touch) and (3+1)D
//	BenchmarkTable2     — Table 2: extra elements, variants A and B
//	BenchmarkTable3*    — Table 3 / Fig. 2: the three strategies + speedups
//	BenchmarkTable4     — Table 4: sustained Gflop/s and utilization
//	BenchmarkVariantAB  — §5 ablation: variant A vs B execution
//	BenchmarkTraffic    — §3.2: 133 GB -> 30 GB single-socket traffic
//	BenchmarkCrossover  — §4.1 extension: interconnect sweep
//	BenchmarkCompute*   — real parallel execution of the three strategies
//
// Modeled seconds for the paper's configuration are attached to each run as
// the custom metric "modeled-s"; paper values are in EXPERIMENTS.md.

import (
	"fmt"
	"testing"
	"time"

	"islands/internal/decomp"
	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/mpdata"
	"islands/internal/solver"
	"islands/internal/stencil"
	"islands/internal/topology"
	"islands/internal/tune"
)

var paperGrid = grid.Sz(1024, 512, 64)

const paperSteps = 50

// benchPs is the processor range the tables sweep; the full 1..14 range is
// covered by the CLI (cmd/paper-tables), benches sample the corners.
var benchPs = []int{1, 2, 4, 8, 14}

func modelBench(b *testing.B, strat exec.Strategy, placement grid.PlacementPolicy, variant decomp.Variant, p int) {
	b.Helper()
	m, err := topology.UV2000(p)
	if err != nil {
		b.Fatal(err)
	}
	prog := &mpdata.NewProgram().Program
	var last *exec.ModelResult
	for i := 0; i < b.N; i++ {
		last, err = exec.Model(exec.Config{
			Machine: m, Strategy: strat, Placement: placement, Variant: variant, Steps: paperSteps,
		}, prog, paperGrid)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.TotalTime, "modeled-s")
	b.ReportMetric(last.SustainedFlops()/1e9, "modeled-Gflop/s")
}

func BenchmarkTable1OriginalSerialInit(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			modelBench(b, exec.Original, grid.FirstTouchSerial, decomp.VariantA, p)
		})
	}
}

func BenchmarkTable1OriginalFirstTouch(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			modelBench(b, exec.Original, grid.FirstTouchParallel, decomp.VariantA, p)
		})
	}
}

func BenchmarkTable1Plus31D(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			modelBench(b, exec.Plus31D, grid.FirstTouchParallel, decomp.VariantA, p)
		})
	}
}

// BenchmarkTable2 measures the mechanical redundancy analysis itself and
// reports the variant A/B percentages at P=14 (paper: 3.21% / 6.42%).
func BenchmarkTable2ExtraElements(b *testing.B) {
	prog := &mpdata.NewProgram().Program
	var a14, b14 float64
	for i := 0; i < b.N; i++ {
		h, err := stencil.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		a14 = decomp.ExtraElementsPercent(h, paperGrid, decomp.Partition1D(paperGrid, 14, decomp.VariantA))
		b14 = decomp.ExtraElementsPercent(h, paperGrid, decomp.Partition1D(paperGrid, 14, decomp.VariantB))
	}
	b.ReportMetric(a14, "variantA-%")
	b.ReportMetric(b14, "variantB-%")
}

// BenchmarkTable3 prices the three strategies and reports the headline
// speedups (paper at P=14: S_pr = 10.3, S_ov = 2.78).
func BenchmarkTable3Speedups(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m, err := topology.UV2000(p)
			if err != nil {
				b.Fatal(err)
			}
			prog := &mpdata.NewProgram().Program
			var spr, sov float64
			for i := 0; i < b.N; i++ {
				price := func(s exec.Strategy) float64 {
					r, err := exec.Model(exec.Config{
						Machine: m, Strategy: s, Placement: grid.FirstTouchParallel, Steps: paperSteps,
					}, prog, paperGrid)
					if err != nil {
						b.Fatal(err)
					}
					return r.TotalTime
				}
				orig := price(exec.Original)
				blocked := price(exec.Plus31D)
				isl := price(exec.IslandsOfCores)
				spr = blocked / isl
				sov = orig / isl
			}
			b.ReportMetric(spr, "S_pr")
			b.ReportMetric(sov, "S_ov")
		})
	}
}

func BenchmarkTable3Islands(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			modelBench(b, exec.IslandsOfCores, grid.FirstTouchParallel, decomp.VariantA, p)
		})
	}
}

// BenchmarkTable4 reports sustained performance and utilization of the
// islands approach (paper at P=14: 390.1 Gflop/s, 26.3%).
func BenchmarkTable4Sustained(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			m, err := topology.UV2000(p)
			if err != nil {
				b.Fatal(err)
			}
			prog := &mpdata.NewProgram().Program
			var g, util float64
			for i := 0; i < b.N; i++ {
				r, err := exec.Model(exec.Config{
					Machine: m, Strategy: exec.IslandsOfCores,
					Placement: grid.FirstTouchParallel, Steps: paperSteps,
				}, prog, paperGrid)
				if err != nil {
					b.Fatal(err)
				}
				g = r.SustainedFlops() / 1e9
				util = 100 * r.SustainedFlops() / m.PeakFlops()
			}
			b.ReportMetric(g, "Gflop/s")
			b.ReportMetric(util, "util-%")
		})
	}
}

// BenchmarkVariantAB is the §5 mapping ablation at P=14.
func BenchmarkVariantAB(b *testing.B) {
	for _, v := range []decomp.Variant{decomp.VariantA, decomp.VariantB} {
		b.Run("variant"+v.String(), func(b *testing.B) {
			modelBench(b, exec.IslandsOfCores, grid.FirstTouchParallel, v, 14)
		})
	}
}

// BenchmarkTraffic reproduces §3.2's single-socket traffic comparison
// (paper: 133 GB vs 30 GB for 256x256x64, 50 steps).
func BenchmarkTraffic(b *testing.B) {
	domain := grid.Sz(256, 256, 64)
	m := topology.SingleSocket()
	prog := &mpdata.NewProgram().Program
	for _, strat := range []exec.Strategy{exec.Original, exec.Plus31D} {
		b.Run(strat.String(), func(b *testing.B) {
			var gb float64
			for i := 0; i < b.N; i++ {
				r, err := exec.Model(exec.Config{Machine: m, Strategy: strat, Steps: 50}, prog, domain)
				if err != nil {
					b.Fatal(err)
				}
				gb = r.MemTrafficBytes / 1e9
			}
			b.ReportMetric(gb, "traffic-GB")
		})
	}
}

// BenchmarkCrossover sweeps the interconnect quality (the §4.1 trade-off /
// future-work extension) and reports the islands' advantage at the extremes.
func BenchmarkCrossover(b *testing.B) {
	domain := grid.Sz(512, 256, 32)
	prog := &mpdata.NewProgram().Program
	for _, pt := range []struct {
		name string
		bw   float64
		lat  float64
	}{
		{"fast-fabric", 200e9, 0.05e-6},
		{"numalink", 13.4e9, 0.35e-6},
		{"slow-network", 1e9, 5e-6},
	} {
		b.Run(pt.name, func(b *testing.B) {
			m, err := topology.Symmetric(8, pt.bw, pt.lat)
			if err != nil {
				b.Fatal(err)
			}
			var ratio float64
			for i := 0; i < b.N; i++ {
				price := func(s exec.Strategy) float64 {
					r, err := exec.Model(exec.Config{
						Machine: m, Strategy: s, Placement: grid.FirstTouchParallel, Steps: 10,
					}, prog, domain)
					if err != nil {
						b.Fatal(err)
					}
					return r.TotalTime
				}
				ratio = price(exec.Plus31D) / price(exec.IslandsOfCores)
			}
			b.ReportMetric(ratio, "islands-advantage-x")
		})
	}
}

// computeBench runs the real parallel computation (goroutine work teams) of
// one MPDATA time step with the given strategy and reports cell throughput
// and steady-state allocations (the compiled-schedule loop must stay at 0
// allocs/op).
func computeBench(b *testing.B, strat exec.Strategy, coreIslands, disableFusion bool) {
	b.Helper()
	domain := grid.Sz(128, 64, 16)
	m, err := topology.UV2000(2)
	if err != nil {
		b.Fatal(err)
	}
	state := mpdata.NewState(domain)
	state.SetGaussian(64, 32, 8, 4, 1, 0.1)
	state.SetUniformVelocity(0.2, 0.1, 0.05)
	runner, err := exec.NewRunner(exec.Config{
		Machine: m, Strategy: strat, CoreIslands: coreIslands,
		Boundary: stencil.Clamp, Steps: 1, BlockI: 16, DisableFusion: disableFusion,
	}, mpdata.NewProgram(), state.InputMap(), mpdata.InPsi)
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	// One untimed step first: the initial Run pays one-time costs (lazy
	// allocations, first-touch page faults on private buffers) that the
	// steady-state loop never sees again. Warming up makes allocs/op the
	// steady-state number even at -benchtime 1x, which is what the CI
	// bench-smoke gate checks against zero.
	if err := runner.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(domain.Cells())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkComputeOriginal(b *testing.B)    { computeBench(b, exec.Original, false, false) }
func BenchmarkComputePlus31D(b *testing.B)     { computeBench(b, exec.Plus31D, false, false) }
func BenchmarkComputeIslands(b *testing.B)     { computeBench(b, exec.IslandsOfCores, false, false) }
func BenchmarkComputeCoreIslands(b *testing.B) { computeBench(b, exec.IslandsOfCores, true, false) }

// solverBenchDomains picks a benchmark domain per catalog solver: the shared
// 128x64x16 compute grid where the solver accepts it, and the closest shape
// satisfying the entry's k-packing constraint otherwise (docs/SOLVERS.md).
var solverBenchDomains = map[string]grid.Size{
	"lbm":  grid.Sz(128, 64, 9),
	"swe":  grid.Sz(128, 128, 3),
	"wave": grid.Sz(128, 128, 2),
	"life": grid.Sz(128, 128, 1),
}

// BenchmarkComputeSolvers runs one compiled islands-strategy step of every
// catalog solver — the per-solver arms of the BENCH_compute.json trajectory.
// Like computeBench, each arm must stay at 0 allocs/op in steady state.
func BenchmarkComputeSolvers(b *testing.B) {
	m, err := topology.UV2000(2)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range solver.Names() {
		entry, err := solver.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			domain, ok := solverBenchDomains[name]
			if !ok {
				domain = grid.Sz(128, 64, 16)
			}
			kp, err := entry.NewProgram(solver.Options{})
			if err != nil {
				b.Fatal(err)
			}
			state, err := entry.NewProblemState(domain)
			if err != nil {
				b.Fatal(err)
			}
			runner, err := exec.NewRunner(exec.Config{
				Machine: m, Strategy: exec.IslandsOfCores,
				Boundary: stencil.Clamp, Steps: 1, BlockI: 16,
			}, kp, state.Inputs, state.Feedback)
			if err != nil {
				b.Fatal(err)
			}
			defer runner.Close()
			if err := runner.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := runner.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(domain.Cells())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// kstepBench is the temporal-blocking ablation: the islands strategies
// advancing 8 steps per op with k inner steps between global joins. Every
// arm does identical work per op. Two figures of merit come out of each
// arm:
//
//   - ns/op, the real execution on the host. Goroutine "islands" share one
//     address space, so a machine-wide join costs the same arrival churn as
//     an island-local barrier and the sweep mostly exposes the widened
//     trapezoids' redundant compute — the cost side of the trade.
//   - modeled-speedup-x, the paper machine's prediction for the same
//     configuration (UV2000 NUMAlink joins at tens of microseconds),
//     where amortizing the global join is the whole point. This is the
//     benefit side, and the number the advisor trades against redundancy.
//
// The islands arms run the strong-scaling configuration temporal blocking
// targets — 14 nodes on a thin-cross-section grid with wide i-parts, where
// the modeled join is ~20% of a step — while the core-islands arms stay on
// the compute-bound BenchmarkCompute grid (their sub-islands subdivide j,
// and 128x64x16 is the feasibility envelope: k=2 fits, k >= 4 skips
// loudly instead of silently re-measuring k=1).
func kstepBench(b *testing.B, coreIslands bool, k int) {
	b.Helper()
	domain, p := grid.Sz(512, 8, 4), 14
	if coreIslands {
		domain, p = grid.Sz(128, 64, 16), 2
	}
	const stepsPerOp = 8
	m, err := topology.UV2000(p)
	if err != nil {
		b.Fatal(err)
	}
	state := mpdata.NewState(domain)
	state.SetGaussian(float64(domain.NI)/2, float64(domain.NJ)/2, float64(domain.NK)/2, 4, 1, 0.1)
	state.SetUniformVelocity(0.2, 0.1, 0.05)
	runner, err := exec.NewRunner(exec.Config{
		Machine: m, Strategy: exec.IslandsOfCores, CoreIslands: coreIslands,
		Boundary: stencil.Clamp, Steps: stepsPerOp, BlockI: 16, KSteps: k,
	}, mpdata.NewProgram(), state.InputMap(), mpdata.InPsi)
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	if st := runner.Schedule().Stats(); st.KSteps != k {
		b.Skipf("ksteps=%d infeasible at %v: %s", k, domain, st.KStepFallbackReason)
	}
	model := func(kk int) float64 {
		r, err := exec.Model(exec.Config{
			Machine: m, Strategy: exec.IslandsOfCores, CoreIslands: coreIslands,
			Placement: grid.FirstTouchParallel, Boundary: stencil.Clamp,
			Steps: stepsPerOp, KSteps: kk,
		}, &mpdata.NewProgram().Program, domain)
		if err != nil {
			b.Fatal(err)
		}
		return r.TotalTime
	}
	modeledSpeedup := model(1) / model(k)
	if err := runner.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(domain.Cells())*stepsPerOp*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	b.ReportMetric(modeledSpeedup, "modeled-speedup-x")
}

func BenchmarkComputeIslandsK1(b *testing.B)     { kstepBench(b, false, 1) }
func BenchmarkComputeIslandsK2(b *testing.B)     { kstepBench(b, false, 2) }
func BenchmarkComputeIslandsK4(b *testing.B)     { kstepBench(b, false, 4) }
func BenchmarkComputeIslandsK8(b *testing.B)     { kstepBench(b, false, 8) }
func BenchmarkComputeCoreIslandsK1(b *testing.B) { kstepBench(b, true, 1) }
func BenchmarkComputeCoreIslandsK2(b *testing.B) { kstepBench(b, true, 2) }
func BenchmarkComputeCoreIslandsK4(b *testing.B) { kstepBench(b, true, 4) }
func BenchmarkComputeCoreIslandsK8(b *testing.B) { kstepBench(b, true, 8) }

// BenchmarkComputeIslandsNoFuse is the stage-fusion ablation: the same
// islands schedule compiled with one phase per stage (17 barriers per block
// instead of 7). The gap to BenchmarkComputeIslands is the fusion payoff.
func BenchmarkComputeIslandsNoFuse(b *testing.B) {
	computeBench(b, exec.IslandsOfCores, false, true)
}

// BenchmarkComputeTuned runs the autotuner's chosen configuration for the
// standard compute shape (the BenchmarkComputeIslands grid on 2 sockets).
// Before the timer starts it calibrates the top modeled candidates with
// short real runs — the one-shot tuning mode — including the default
// islands arm as the incumbent, so the winner is never worse than default
// by construction. Custom metrics record the chosen knobs (tuned-blocki,
// tuned-ksteps) and the measured advantage over the default islands arm
// (tuned-vs-default-x >= 1 within noise). The timed loop itself is the
// usual alloc-free dispatch.
func BenchmarkComputeTuned(b *testing.B) {
	domain := grid.Sz(128, 64, 16)
	m, err := topology.UV2000(2)
	if err != nil {
		b.Fatal(err)
	}
	kp := mpdata.NewProgram()
	prog := &kp.Program
	class := tune.Class{Domain: domain, Processors: 2, Boundary: stencil.Clamp, IORD: 2}
	tn, err := tune.New(tune.Options{Seed: 1, TopM: 6, Seeder: func(tune.Class) ([]tune.Candidate, error) {
		return tune.SeedCandidates(m, prog, class)
	}})
	if err != nil {
		b.Fatal(err)
	}
	base := class.BaseConfig(m)
	const calibSteps = 2 // timed steps per candidate: cheap enough for -benchtime 1x CI smoke
	measure := func(k tune.Knobs) (tune.Observation, error) {
		cfg := tune.ApplyKnobs(base, k)
		kblock := max(k.KSteps, 1)
		cfg.Steps = kblock
		state := mpdata.NewState(domain)
		state.SetGaussian(64, 32, 8, 4, 1, 0.1)
		state.SetUniformVelocity(0.2, 0.1, 0.05)
		r, err := exec.NewRunner(cfg, kp, state.InputMap(), mpdata.InPsi)
		if err != nil {
			return tune.Observation{}, err
		}
		defer r.Close()
		if err := r.Run(); err != nil { // warm-up block
			return tune.Observation{}, err
		}
		reps := (calibSteps + kblock - 1) / kblock
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if err := r.Run(); err != nil {
				return tune.Observation{}, err
			}
		}
		n := reps * kblock
		return tune.Observation{StepSeconds: time.Since(t0).Seconds() / float64(n), Steps: n}, nil
	}

	// The default islands arm (BenchmarkComputeIslands' config) is the
	// incumbent: measure it first so the tuner can never pick worse.
	def := tune.KnobsOf(exec.Config{
		Machine: m, Strategy: exec.IslandsOfCores, Boundary: stencil.Clamp, BlockI: 16, Steps: 1,
	}, domain)
	defObs, err := measure(def)
	if err != nil {
		b.Fatal(err)
	}
	defObs.Knobs = def
	tn.Observe(class, defObs)
	const stepsPerOp = 8 // feasibility window: admits k in {1,2,4,8}
	dec, err := tn.Calibrate(class, def, stepsPerOp, measure)
	if err != nil {
		b.Fatal(err)
	}
	tunedStep := defObs.StepSeconds
	for _, c := range tn.Snapshot(class) {
		if c.Knobs == dec.Knobs && c.Obs > 0 {
			tunedStep = c.MeasuredStep
		}
	}

	cfg := tune.ApplyKnobs(base, dec.Knobs)
	kblock := max(dec.Knobs.KSteps, 1)
	cfg.Steps = kblock
	state := mpdata.NewState(domain)
	state.SetGaussian(64, 32, 8, 4, 1, 0.1)
	state.SetUniformVelocity(0.2, 0.1, 0.05)
	runner, err := exec.NewRunner(cfg, kp, state.InputMap(), mpdata.InPsi)
	if err != nil {
		b.Fatal(err)
	}
	defer runner.Close()
	if err := runner.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(domain.Cells())*float64(kblock)*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
	b.ReportMetric(float64(dec.Knobs.BlockI), "tuned-blocki")
	b.ReportMetric(float64(kblock), "tuned-ksteps")
	if tunedStep > 0 {
		b.ReportMetric(defObs.StepSeconds/tunedStep, "tuned-vs-default-x")
	}
}

// BenchmarkReferenceSolver measures the sequential reference MPDATA step.
func BenchmarkReferenceSolver(b *testing.B) {
	state := mpdata.NewState(grid.Sz(64, 64, 16))
	state.SetGaussian(32, 32, 8, 4, 1, 0.1)
	state.SetUniformVelocity(0.2, 0.1, 0.05)
	solver, err := mpdata.NewSolver(state)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.Step(1)
	}
	b.ReportMetric(float64(state.Domain.Cells())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkHaloAnalysis measures the backward dependency analysis of the
// 17-stage program (the planning cost of the islands approach).
func BenchmarkHaloAnalysis(b *testing.B) {
	prog := &mpdata.NewProgram().Program
	for i := 0; i < b.N; i++ {
		if _, err := stencil.Analyze(prog); err != nil {
			b.Fatal(err)
		}
	}
}
