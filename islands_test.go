package islands

import (
	"math"
	"testing"
)

func TestSimulationRunConserves(t *testing.T) {
	// Clamp boundaries match the production MPDATA configuration (and the
	// islands halo accounting); the blob is kept clear of the edges.
	sim, err := NewSimulation(Sz(24, 16, 8), Config{
		Processors: 2, Strategy: IslandsOfCores, Boundary: Clamp,
		Steps: 5, BlockI: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.State.SetGaussian(12, 8, 4, 2, 1, 0.1)
	sim.State.SetUniformVelocity(0.2, 0.1, 0)
	before := sim.State.Psi.Sum()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	after := sim.State.Psi.Sum()
	// Clamp boundaries leak a little mass at the edges; the blob is
	// centered, so drift stays small.
	if rel := math.Abs(after-before) / before; rel > 0.05 {
		t.Fatalf("mass drift %.3f", rel)
	}
	if sim.State.Psi.Min() < 0 {
		t.Fatal("positivity violated")
	}
}

func TestStrategiesAgreeViaPublicAPI(t *testing.T) {
	run := func(s Strategy) []float64 {
		sim, err := NewSimulation(Sz(20, 12, 6), Config{
			Processors: 2, Strategy: s, Boundary: Clamp, Steps: 3, BlockI: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.State.SetGaussian(10, 6, 3, 2, 1, 0.1)
		sim.State.SetRotationVelocityZ(0.02)
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.State.Psi.Data
	}
	a, b, c := run(Original), run(Plus31D), run(IslandsOfCores)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("strategies disagree at %d: %v %v %v", i, a[i], b[i], c[i])
		}
	}
}

func TestPredictOrdering(t *testing.T) {
	domain := Sz(512, 256, 32)
	cfgAt := func(s Strategy) *Prediction {
		p, err := Predict(domain, Config{Processors: 8, Strategy: s,
			Placement: FirstTouchParallel, Steps: 10})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	orig, blocked, isl := cfgAt(Original), cfgAt(Plus31D), cfgAt(IslandsOfCores)
	if !(isl.Time < orig.Time && isl.Time < blocked.Time) {
		t.Fatalf("islands must win at P=8: %v %v %v", orig.Time, blocked.Time, isl.Time)
	}
	if isl.ExtraElementsPct <= 0 {
		t.Fatal("islands prediction must report redundancy")
	}
	if orig.MemTrafficGB <= blocked.MemTrafficGB {
		t.Fatal("original must move more memory than blocked strategies")
	}
}

func TestPredictValidation(t *testing.T) {
	if _, err := Predict(Sz(8, 8, 8), Config{Processors: 1}); err == nil {
		t.Fatal("expected error for zero steps")
	}
	if _, err := Predict(Sz(8, 8, 8), Config{Processors: 20, Steps: 1}); err == nil {
		t.Fatal("expected error for 20 processors")
	}
	if _, err := NewSimulation(Sz(8, 8, 8), Config{Processors: 0, Steps: 1}); err == nil {
		t.Fatal("expected error for zero processors")
	}
}

func TestPaperTable2Public(t *testing.T) {
	tab, err := PaperTable2(14)
	if err != nil {
		t.Fatal(err)
	}
	va := tab.Rows[0].Values
	vb := tab.Rows[1].Values
	// The paper's Table 2: linear growth, variant B twice variant A,
	// small absolute values (A: 3.21% at 14 islands; our 17-stage graph
	// yields 2.76%).
	if va[13] < 2 || va[13] > 4 {
		t.Fatalf("variant A at 14 islands: %.2f%%, want 2-4%%", va[13])
	}
	if r := vb[13] / va[13]; math.Abs(r-2) > 0.05 {
		t.Fatalf("B/A ratio %.3f, want ~2", r)
	}
}

func TestPaperTrafficTablePublic(t *testing.T) {
	tab, err := PaperTrafficTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("traffic table rows = %d", len(tab.Rows))
	}
}
