// Package islands reproduces the PaCT 2017 paper "Islands-of-Cores Approach
// for Harnessing SMP/NUMA Architectures in Heterogeneous Stencil
// Computations" (Szustak, Wyrzykowski, Jakl) as a Go library.
//
// It provides:
//
//   - a full 17-stage MPDATA advection solver expressed as a heterogeneous
//     stencil program (internal/mpdata, internal/stencil);
//   - the paper's three execution strategies — original, (3+1)D
//     decomposition, and islands-of-cores — running real computations on
//     goroutine work teams (internal/exec, internal/sched);
//   - a simulated SMP/NUMA machine (SGI UV 2000 and variants) with a
//     flow-level contention model that prices each strategy's execution
//     time, reproducing the paper's Tables 1-4 and Fig. 2
//     (internal/topology, internal/simmach, internal/perf).
//
// The quickest entry points are Simulation (run MPDATA numerically with any
// strategy) and Predict (price a configuration on the simulated machine).
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-versus-model comparison.
package islands

import (
	"fmt"

	"islands/internal/advisor"
	"islands/internal/decomp"
	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/mpdata"
	"islands/internal/perf"
	"islands/internal/stencil"
	"islands/internal/topology"
)

// Strategy selects how a simulation is executed and priced.
type Strategy = exec.Strategy

// The three strategies of the paper.
const (
	Original       = exec.Original
	Plus31D        = exec.Plus31D
	IslandsOfCores = exec.IslandsOfCores
)

// Placement selects the NUMA page placement policy.
type Placement = grid.PlacementPolicy

// Placement policies.
const (
	FirstTouchSerial   = grid.FirstTouchSerial
	FirstTouchParallel = grid.FirstTouchParallel
	Interleaved        = grid.Interleaved
)

// Variant selects the 1D island mapping dimension.
type Variant = decomp.Variant

// Island mapping variants (paper §4.2, Table 2).
const (
	VariantA = decomp.VariantA
	VariantB = decomp.VariantB
)

// Boundary selects the domain boundary condition.
type Boundary = stencil.Boundary

// Boundary conditions.
const (
	Periodic = stencil.Periodic
	Clamp    = stencil.Clamp
)

// Machine is a simulated SMP/NUMA platform.
type Machine = topology.Machine

// UV2000 returns the paper's machine with p of its 14 NUMA nodes
// (8-core Xeon E5-4627v2 each, NUMAlink 6 interconnect).
func UV2000(p int) (*Machine, error) { return topology.UV2000(p) }

// Size is a 3D grid extent.
type Size = grid.Size

// Sz constructs a Size.
func Sz(ni, nj, nk int) Size { return grid.Sz(ni, nj, nk) }

// Config selects the execution setting of a simulation or prediction.
type Config struct {
	// Processors is the number of UV 2000 NUMA nodes to use (1..14).
	Processors int
	Strategy   Strategy
	Placement  Placement
	Variant    Variant
	Boundary   Boundary
	// Steps is the number of MPDATA time steps.
	Steps int
	// BlockI overrides the (3+1)D block width (0 = size from cache).
	BlockI int
	// IslandGrid, when non-zero, maps islands onto a 2D grid of
	// processors (pi x pj over the first two dimensions) instead of the
	// 1D mapping selected by Variant — the paper's §4.2 future work.
	IslandGrid [2]int
	// CoreIslands applies the islands approach inside every island: each
	// core becomes a sub-island with private redundant trapezoids and no
	// intra-block synchronization — the paper's §6 future work.
	CoreIslands bool
	// KSteps, when > 1, temporally blocks the island strategies: every
	// island advances KSteps full time steps on its private buffers
	// (redundant trapezoidal halo compute shrinking step by step) between
	// global joins, so barriers and halo exchanges are paid once per block
	// instead of once per step. 0 or 1 means no temporal blocking.
	// Infeasible requests run at k=1 and record the reason in the compiled
	// schedule (exec.ScheduleStats.KStepFallbackReason).
	KSteps int
	// IORD selects the MPDATA order (number of passes); 0 means the
	// paper's default of 2. Higher orders append corrective stage groups.
	IORD int
	// Unlimited disables the non-oscillatory flux limiter, removing six
	// stages per corrective pass and the monotonicity guarantee.
	Unlimited bool
}

// mpdataOptions translates the public knobs to the solver's options.
func (c Config) mpdataOptions() mpdata.Options {
	o := mpdata.DefaultOptions()
	if c.IORD != 0 {
		o.IORD = c.IORD
	}
	if c.Unlimited {
		o.NonOscillatory = false
	}
	return o
}

func (c Config) execConfig() (exec.Config, error) {
	m, err := topology.UV2000(c.Processors)
	if err != nil {
		return exec.Config{}, err
	}
	return exec.Config{
		Machine:     m,
		Strategy:    c.Strategy,
		Placement:   c.Placement,
		Variant:     c.Variant,
		Boundary:    c.Boundary,
		Steps:       c.Steps,
		BlockI:      c.BlockI,
		IslandGrid:  c.IslandGrid,
		CoreIslands: c.CoreIslands,
		KSteps:      c.KSteps,
	}, nil
}

// Simulation is an MPDATA run: a state (fields) plus an execution strategy.
type Simulation struct {
	State *mpdata.State
	// OnStep, when set, is invoked after every completed time step with
	// the zero-based step index; the state is fully published at that
	// point. Use it to update time-dependent velocities (via the State
	// setters) or to record diagnostics. Under temporal blocking
	// (Config.KSteps > 1) it fires once per k-step block, with the index
	// of the block's last completed step.
	OnStep func(step int)

	cfg    Config
	runner *exec.Runner
}

// NewSimulation allocates an MPDATA simulation on the given domain. The
// state's initial conditions can be set through the State field (SetGaussian,
// SetSphere, SetUniformVelocity, SetRotationVelocityZ) before calling Run.
func NewSimulation(domain Size, cfg Config) (*Simulation, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("islands: Steps must be positive")
	}
	if cfg.Processors <= 0 {
		return nil, fmt.Errorf("islands: Processors must be positive")
	}
	return &Simulation{State: mpdata.NewState(domain), cfg: cfg}, nil
}

// Run executes the configured number of time steps with the configured
// strategy, performing the real numerical computation in parallel. The
// result lands in s.State.Psi.
func (s *Simulation) Run() error {
	ec, err := s.cfg.execConfig()
	if err != nil {
		return err
	}
	prog, err := mpdata.NewProgramWithOptions(s.cfg.mpdataOptions())
	if err != nil {
		return err
	}
	runner, err := exec.NewRunner(ec, prog, s.State.InputMap(), mpdata.InPsi)
	if err != nil {
		return err
	}
	defer runner.Close()
	runner.OnStepEnd = s.OnStep
	s.runner = runner
	if err := runner.Run(); err != nil {
		return err
	}
	// The islands' swap+halo feedback mode keeps the fresh values in
	// island-private buffers during the step loop; materialize them into
	// State.Psi (a no-op for the other strategies and modes).
	runner.SyncFeedback()
	return nil
}

// Save writes the simulation state (all five fields and the completed-step
// counter, derived from the configured steps if Run finished) to a
// checkpoint file readable by Load and by cmd/field-info -checkpoint.
func (s *Simulation) Save(path string, completedSteps int) error {
	return mpdata.SaveCheckpoint(path, s.State, completedSteps)
}

// Load restores a checkpoint into a fresh simulation with the given
// configuration, returning the simulation and the step counter the
// checkpoint was taken at.
func Load(path string, cfg Config) (*Simulation, int, error) {
	state, steps, err := mpdata.LoadCheckpoint(path)
	if err != nil {
		return nil, 0, err
	}
	sim, err := NewSimulation(state.Domain, cfg)
	if err != nil {
		return nil, 0, err
	}
	sim.State = state
	return sim, steps, nil
}

// Prediction is the modeled performance of a configuration on the simulated
// UV 2000.
type Prediction struct {
	// Time is the modeled execution time in seconds for all steps.
	Time float64
	// SustainedGflops is useful flop/s over the run, in Gflop/s.
	SustainedGflops float64
	// UtilizationPct is sustained performance over theoretical peak.
	UtilizationPct float64
	// ExtraElementsPct is the redundant-computation overhead (Table 2).
	ExtraElementsPct float64
	// MemTrafficGB is the main-memory traffic of the run.
	MemTrafficGB float64
	// RemoteTrafficGB is the NUMAlink traffic of the run.
	RemoteTrafficGB float64
}

// Predict prices an MPDATA configuration on the simulated machine without
// running the numerics — the tool behind the paper-table reproduction.
func Predict(domain Size, cfg Config) (*Prediction, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("islands: Steps must be positive")
	}
	ec, err := cfg.execConfig()
	if err != nil {
		return nil, err
	}
	kp, err := mpdata.NewProgramWithOptions(cfg.mpdataOptions())
	if err != nil {
		return nil, err
	}
	res, err := exec.Model(ec, &kp.Program, domain)
	if err != nil {
		return nil, err
	}
	peak := ec.Machine.PeakFlops()
	return &Prediction{
		Time:             res.TotalTime,
		SustainedGflops:  res.SustainedFlops() / 1e9,
		UtilizationPct:   100 * res.SustainedFlops() / peak,
		ExtraElementsPct: res.ExtraElementsPct,
		MemTrafficGB:     res.MemTrafficBytes / 1e9,
		RemoteTrafficGB:  res.RemoteTrafficBytes / 1e9,
	}, nil
}

// Table is a rendered paper table.
type Table = perf.Table

// PaperSweep prepares the evaluation sweep of the paper: the 1024x512x64
// grid, 50 time steps, P = 1..maxP UV 2000 processors. Use its Table1,
// Table3, Table4, VariantTable and Fig2Series methods to regenerate the
// evaluation section.
func PaperSweep(maxP int) *perf.Sweep {
	prog := &mpdata.NewProgram().Program
	return perf.NewSweep(prog, grid.Sz(1024, 512, 64), 50, maxP)
}

// PaperTable2 regenerates Table 2 at the paper's scale.
func PaperTable2(maxP int) (*Table, error) {
	prog := &mpdata.NewProgram().Program
	return perf.Table2(prog, grid.Sz(1024, 512, 64), maxP)
}

// PaperTrafficTable regenerates the §3.2 single-socket traffic comparison.
func PaperTrafficTable() (*Table, error) {
	prog := &mpdata.NewProgram().Program
	return perf.TrafficTable(prog)
}

// PaperRooflineTable classifies every MPDATA stage against the UV 2000
// socket's machine balance and reports the whole-program arithmetic
// intensities of the original and cache-blocked executions.
func PaperRooflineTable() (*Table, error) {
	m, err := topology.UV2000(1)
	if err != nil {
		return nil, err
	}
	prog := &mpdata.NewProgram().Program
	return perf.RooflineTable(prog, m.Nodes[0]), nil
}

// PaperWeakScalingTable grows the domain with the processor count (73
// i-columns per island — the paper's per-island share at P=14).
func PaperWeakScalingTable(maxP int) (*Table, error) {
	prog := &mpdata.NewProgram().Program
	return perf.WeakScalingTable(prog, 73, grid.Sz(0, 512, 64), 50, maxP)
}

// PaperDomainSweepTable prices the islands strategy at P=14 over a range of
// domain widths, showing the redundancy fraction and efficiency versus
// problem size.
func PaperDomainSweepTable() (*Table, error) {
	prog := &mpdata.NewProgram().Program
	return perf.DomainSweepTable(prog, 14, []int{256, 512, 1024, 2048, 4096}, grid.Sz(0, 512, 64), 50)
}

// PaperAffinityTable is the §4.2 affinity ablation: adjacent versus
// scattered island placement on a two-IRU cluster.
func PaperAffinityTable() (*Table, error) {
	prog := &mpdata.NewProgram().Program
	return perf.AffinityTable(prog, grid.Sz(512, 256, 32), 50)
}

// PaperBreakdownTable attributes each strategy's core time to activity
// categories (compute+stream, halo stalls, barriers, fills) at P=8 on the
// paper's grid — the quantitative form of §5's explanation.
func PaperBreakdownTable() (*Table, error) {
	prog := &mpdata.NewProgram().Program
	return perf.BreakdownTable(prog, grid.Sz(1024, 512, 64), 8, 50)
}

// Recommendation is one ranked configuration from Advise.
type Recommendation struct {
	// Name labels the configuration ("islands 7x2", "original", ...).
	Name string
	// Time is the modeled execution time in seconds.
	Time float64
	// Rationale summarizes the configuration's cost structure.
	Rationale string
}

// Advise prices every strategy and island mapping for an MPDATA run of the
// given size on p UV 2000 processors and returns them fastest-first — the
// paper's §6 "management of the correlation between computation and
// communication costs" as a library call.
func Advise(domain Size, p, steps int) ([]Recommendation, error) {
	m, err := topology.UV2000(p)
	if err != nil {
		return nil, err
	}
	prog := &mpdata.NewProgram().Program
	cands, err := advisor.Advise(m, prog, domain, steps)
	if err != nil {
		return nil, err
	}
	out := make([]Recommendation, len(cands))
	for i := range cands {
		out[i] = Recommendation{
			Name:      cands[i].Name,
			Time:      cands[i].Time(),
			Rationale: cands[i].Rationale(),
		}
	}
	return out, nil
}
