package islands_test

import (
	"fmt"

	"islands"
)

// ExampleSimulation advances a small advection problem with the
// islands-of-cores strategy and verifies the physics invariants.
func ExampleSimulation() {
	sim, err := islands.NewSimulation(islands.Sz(32, 24, 8), islands.Config{
		Processors: 2,
		Strategy:   islands.IslandsOfCores,
		Boundary:   islands.Clamp,
		Steps:      10,
	})
	if err != nil {
		panic(err)
	}
	sim.State.SetGaussian(16, 12, 4, 3, 1, 0.1)
	sim.State.SetUniformVelocity(0.2, 0.1, 0)
	if err := sim.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("positive definite: %v\n", sim.State.Psi.Min() >= 0)
	// Output:
	// positive definite: true
}

// ExamplePredict prices the paper's P=14 benchmark configuration on the
// simulated SGI UV 2000.
func ExamplePredict() {
	pred, err := islands.Predict(islands.Sz(1024, 512, 64), islands.Config{
		Processors: 14,
		Strategy:   islands.IslandsOfCores,
		Placement:  islands.FirstTouchParallel,
		Steps:      50,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("within the paper's band: %v\n", pred.Time > 0.5 && pred.Time < 1.5)
	fmt.Printf("redundancy below 5%%:    %v\n", pred.ExtraElementsPct < 5)
	// Output:
	// within the paper's band: true
	// redundancy below 5%:    true
}

// ExampleAdvise ranks the execution strategies for a configuration.
func ExampleAdvise() {
	recs, err := islands.Advise(islands.Sz(512, 256, 32), 8, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("candidates ranked: %v\n", len(recs) >= 5)
	fmt.Printf("slowest is a non-islands baseline: %v\n",
		recs[len(recs)-1].Name == "(3+1)D" || recs[len(recs)-1].Name == "original")
	// Output:
	// candidates ranked: true
	// slowest is a non-islands baseline: true
}

// ExampleUV2000 inspects the simulated machine.
func ExampleUV2000() {
	m, err := islands.UV2000(14)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d cores, %.1f Gflop/s peak\n", m.TotalCores(), m.PeakFlops()/1e9)
	// Output:
	// 112 cores, 1478.4 Gflop/s peak
}
