package islands

// Extension benchmarks: the paper's future-work directions implemented in
// this repository (2D island grids, core-level sub-islands, cluster scaling,
// strategy advice, higher-order MPDATA variants).

import (
	"fmt"
	"testing"

	"islands/internal/advisor"
	"islands/internal/decomp"
	"islands/internal/exec"
	"islands/internal/grid"
	"islands/internal/mpdata"
	"islands/internal/stencil"
	"islands/internal/topology"
)

// BenchmarkIslands2D prices the 2D island factorizations at P=14 (§4.2).
func BenchmarkIslands2D(b *testing.B) {
	prog := &mpdata.NewProgram().Program
	m, err := topology.UV2000(14)
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range [][2]int{{14, 1}, {7, 2}, {2, 7}} {
		b.Run(fmt.Sprintf("%dx%d", g[0], g[1]), func(b *testing.B) {
			var last *exec.ModelResult
			for i := 0; i < b.N; i++ {
				var err error
				last, err = exec.Model(exec.Config{
					Machine: m, Strategy: exec.IslandsOfCores,
					Placement: grid.FirstTouchParallel, IslandGrid: g, Steps: paperSteps,
				}, prog, paperGrid)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.TotalTime, "modeled-s")
			b.ReportMetric(last.ExtraElementsPct, "extra-%")
		})
	}
}

// BenchmarkCoreIslands contrasts team islands against per-core sub-islands
// (§6) at the paper's scale.
func BenchmarkCoreIslands(b *testing.B) {
	prog := &mpdata.NewProgram().Program
	m, err := topology.UV2000(14)
	if err != nil {
		b.Fatal(err)
	}
	for _, core := range []bool{false, true} {
		name := "team-islands"
		if core {
			name = "core-sub-islands"
		}
		b.Run(name, func(b *testing.B) {
			var last *exec.ModelResult
			for i := 0; i < b.N; i++ {
				var err error
				last, err = exec.Model(exec.Config{
					Machine: m, Strategy: exec.IslandsOfCores,
					Placement: grid.FirstTouchParallel, CoreIslands: core, Steps: paperSteps,
				}, prog, paperGrid)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.TotalTime, "modeled-s")
			b.ReportMetric(last.ExtraElementsPct, "extra-%")
		})
	}
}

// BenchmarkClusterScaling extends the strong-scaling study past one machine
// (§6's MPI direction): islands across InfiniBand-joined UV IRUs.
func BenchmarkClusterScaling(b *testing.B) {
	prog := &mpdata.NewProgram().Program
	for _, cfg := range []struct{ irus, per int }{{1, 14}, {2, 14}, {4, 14}} {
		b.Run(fmt.Sprintf("%dxUV-%d", cfg.irus, cfg.per), func(b *testing.B) {
			m, err := topology.ClusterOfUV(cfg.irus, cfg.per)
			if err != nil {
				b.Fatal(err)
			}
			var last *exec.ModelResult
			for i := 0; i < b.N; i++ {
				last, err = exec.Model(exec.Config{
					Machine: m, Strategy: exec.IslandsOfCores,
					Placement: grid.FirstTouchParallel, Steps: paperSteps,
				}, prog, grid.Sz(2048, 512, 64))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.TotalTime, "modeled-s")
			b.ReportMetric(last.SustainedFlops()/1e9, "Gflop/s")
		})
	}
}

// BenchmarkAdvisor measures the full configuration search.
func BenchmarkAdvisor(b *testing.B) {
	m, err := topology.UV2000(14)
	if err != nil {
		b.Fatal(err)
	}
	prog := &mpdata.NewProgram().Program
	for i := 0; i < b.N; i++ {
		if _, err := advisor.Advise(m, prog, grid.Sz(512, 256, 32), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIORDVariants prices the MPDATA order/limiter variants on the
// islands strategy: deeper stage graphs mean more flops and wider halos.
func BenchmarkIORDVariants(b *testing.B) {
	m, err := topology.UV2000(14)
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range []mpdata.Options{
		{IORD: 1},
		{IORD: 2},
		{IORD: 2, NonOscillatory: true},
		{IORD: 3, NonOscillatory: true},
	} {
		name := fmt.Sprintf("iord%d", o.IORD)
		if o.NonOscillatory {
			name += "-nonosc"
		}
		b.Run(name, func(b *testing.B) {
			kp, err := mpdata.NewProgramWithOptions(o)
			if err != nil {
				b.Fatal(err)
			}
			var last *exec.ModelResult
			for i := 0; i < b.N; i++ {
				last, err = exec.Model(exec.Config{
					Machine: m, Strategy: exec.IslandsOfCores,
					Placement: grid.FirstTouchParallel, Steps: paperSteps,
				}, &kp.Program, paperGrid)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.TotalTime, "modeled-s")
			b.ReportMetric(float64(kp.TotalFlopsPerCellStep()), "flops/cell")
		})
	}
}

// BenchmarkVariantExtraElements measures the redundancy accounting for a 2D
// partition at the paper's scale.
func BenchmarkVariantExtraElements(b *testing.B) {
	prog := &mpdata.NewProgram().Program
	h, err := stencil.Analyze(prog)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		parts := decomp.Partition2D(paperGrid, 7, 2)
		_ = decomp.ExtraElementsPercent(h, paperGrid, parts)
	}
}
