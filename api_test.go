package islands

import (
	"testing"

	"islands/internal/mpdata"
)

// refState aliases the solver state for the time-varying-flow test.
type refState = mpdata.State

func newSwirlState(n int, amp float64) *mpdata.State {
	state := mpdata.NewState(Sz(n, n, 2))
	state.SetCosineBell(float64(n)/2, float64(n)*0.3, 1, float64(n)/6, 1, 0.02)
	state.SetSwirlVelocity(amp, 0, 40)
	return state
}

func newRefSolver(s *mpdata.State) (*mpdata.Solver, error) {
	return mpdata.NewSolver(s)
}

func TestPublicCoreIslandsAndGrid2D(t *testing.T) {
	run := func(cfg Config) []float64 {
		sim, err := NewSimulation(Sz(20, 16, 6), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.State.SetGaussian(10, 8, 3, 2, 1, 0.1)
		sim.State.SetRotationVelocityZ(0.02)
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.State.Psi.Data
	}
	base := run(Config{Processors: 2, Strategy: Original, Boundary: Clamp, Steps: 2})
	core := run(Config{Processors: 2, Strategy: IslandsOfCores, Boundary: Clamp, Steps: 2,
		BlockI: 5, CoreIslands: true})
	grid2 := run(Config{Processors: 2, Strategy: IslandsOfCores, Boundary: Clamp, Steps: 2,
		BlockI: 5, IslandGrid: [2]int{1, 2}})
	for i := range base {
		if base[i] != core[i] {
			t.Fatalf("core islands diverge at %d", i)
		}
		if base[i] != grid2[i] {
			t.Fatalf("2D islands diverge at %d", i)
		}
	}
}

func TestPublicIORDKnob(t *testing.T) {
	run := func(cfg Config) float64 {
		sim, err := NewSimulation(Sz(24, 8, 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim.State.SetGaussian(8, 4, 2, 2, 1, 0.05)
		sim.State.SetUniformVelocity(0.5, 0, 0)
		exact := sim.State.Psi.Clone()
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		// 0.5 * 48 steps = 24 cells = one period under periodic BC.
		var l2 float64
		for i, v := range sim.State.Psi.Data {
			d := v - exact.Data[i]
			l2 += d * d
		}
		return l2
	}
	base := Config{Processors: 1, Strategy: Original, Boundary: Periodic, Steps: 48}
	first := base
	first.IORD = 1
	third := base
	third.IORD = 3
	e1, e2, e3 := run(first), run(base), run(third)
	if !(e3 < e2 && e2 < e1) {
		t.Fatalf("errors must fall with IORD: %.4g %.4g %.4g", e1, e2, e3)
	}
}

func TestPublicUnlimitedKnob(t *testing.T) {
	pred, err := Predict(Sz(128, 64, 16), Config{
		Processors: 2, Strategy: IslandsOfCores, Steps: 5, Unlimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Predict(Sz(128, 64, 16), Config{
		Processors: 2, Strategy: IslandsOfCores, Steps: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The unlimited variant drops 6 of 17 stages: it must be predicted
	// faster.
	if pred.Time >= limited.Time {
		t.Fatalf("unlimited (%.4f s) must beat limited (%.4f s)", pred.Time, limited.Time)
	}
}

func TestPublicAdvise(t *testing.T) {
	recs, err := Advise(Sz(256, 128, 16), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 4 {
		t.Fatalf("expected several recommendations, got %d", len(recs))
	}
	if recs[0].Name == "original" || recs[0].Name == "(3+1)D" {
		t.Fatalf("islands should win on 4 sockets, got %q", recs[0].Name)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatal("recommendations not sorted")
		}
	}
	if recs[0].Rationale == "" {
		t.Fatal("missing rationale")
	}
	if _, err := Advise(Sz(8, 8, 8), 99, 5); err == nil {
		t.Fatal("expected error for invalid processor count")
	}
}

// TestOnStepHookTimeVaryingFlow: the per-step hook supports time-dependent
// velocity fields; the parallel islands execution of the swirling-
// deformation flow must match the sequential reference solver exactly.
func TestOnStepHookTimeVaryingFlow(t *testing.T) {
	const n, period, steps = 24, 40, 12
	amp := 0.3

	// Sequential reference with the solver's pre-step updater, under the
	// clamp boundaries the islands' halo accounting assumes (the swirl
	// flow has zero velocity at the walls, so clamping is physical).
	ref := newSwirlState(n, amp)
	solver, err := newRefSolver(ref)
	if err != nil {
		t.Fatal(err)
	}
	solver.SetBoundary(Clamp)
	solver.VelocityUpdater = func(step int, s *refState) {
		s.SetSwirlVelocity(amp, step, period)
	}
	solver.Step(steps)

	// Parallel islands with the post-step hook (velocities for step k+1
	// are installed after step k completes; step 0 is set up front).
	sim, err := NewSimulation(Sz(n, n, 2), Config{
		Processors: 2, Strategy: IslandsOfCores, Boundary: Clamp,
		Steps: steps, BlockI: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Identical runtime expressions to newSwirlState: constant folding of
	// n*0.3 differs from float64(n)*0.3 by one ULP, which the bit-exact
	// comparison below would catch.
	sim.State.SetCosineBell(float64(n)/2, float64(n)*0.3, 1, float64(n)/6, 1, 0.02)
	sim.State.SetSwirlVelocity(amp, 0, period)
	sim.OnStep = func(step int) {
		sim.State.SetSwirlVelocity(amp, step+1, period)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ref.Psi.Data {
		if ref.Psi.Data[i] != sim.State.Psi.Data[i] {
			t.Fatalf("time-varying parallel run diverges at cell %d", i)
		}
	}
}

func TestPredictCoreIslandsReportsMoreRedundancy(t *testing.T) {
	domain := Sz(256, 128, 16)
	base, err := Predict(domain, Config{Processors: 4, Strategy: IslandsOfCores, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	core, err := Predict(domain, Config{Processors: 4, Strategy: IslandsOfCores, Steps: 2, CoreIslands: true})
	if err != nil {
		t.Fatal(err)
	}
	if core.ExtraElementsPct <= base.ExtraElementsPct {
		t.Fatalf("core islands redundancy %.2f%% must exceed %.2f%%",
			core.ExtraElementsPct, base.ExtraElementsPct)
	}
}

// TestPublicCheckpoint: Save/Load round-trips through the public API and a
// resumed run matches an uninterrupted one bit for bit.
func TestPublicCheckpoint(t *testing.T) {
	cfg := Config{Processors: 2, Strategy: IslandsOfCores, Boundary: Clamp, Steps: 4, BlockI: 6}
	mk := func(steps int) *Simulation {
		c := cfg
		c.Steps = steps
		sim, err := NewSimulation(Sz(20, 16, 6), c)
		if err != nil {
			t.Fatal(err)
		}
		sim.State.SetGaussian(10, 8, 3, 2, 1, 0.1)
		sim.State.SetUniformVelocity(0.2, 0.1, 0)
		return sim
	}
	straight := mk(8)
	if err := straight.Run(); err != nil {
		t.Fatal(err)
	}

	first := mk(4)
	if err := first.Run(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/sim.islc"
	if err := first.Save(path, 4); err != nil {
		t.Fatal(err)
	}
	resumed, steps, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 {
		t.Fatalf("restored steps = %d", steps)
	}
	if err := resumed.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range straight.State.Psi.Data {
		if straight.State.Psi.Data[i] != resumed.State.Psi.Data[i] {
			t.Fatalf("resumed run diverges at cell %d", i)
		}
	}
}
