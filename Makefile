# Convenience targets for the islands repository. Everything is stdlib Go;
# `go build ./...` with Go >= 1.22 is the only real requirement.

GO ?= go

.PHONY: all build vet test race race-core bench benchall tables examples clean

# Tier-1 gate: build + vet + full test suite + race detector on the
# concurrency-bearing packages (the scheduler's teams/barriers and the
# compiled-schedule executor).
all: build vet test race-core

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-core:
	$(GO) test -race ./internal/sched/... ./internal/exec/... ./internal/stencil/... ./internal/mpdata/... ./internal/solver/... ./internal/serve/... ./internal/tune/... ./internal/fleet/... ./internal/stream/...

# Run the compute benchmarks and append the results to BENCH_compute.json
# (see docs/PERFORMANCE.md for the trajectory format).
bench:
	scripts/bench.sh

benchall:
	$(GO) test -bench . -benchmem ./...

# Regenerate the paper's evaluation tables on the simulated UV 2000.
tables:
	$(GO) run ./cmd/paper-tables

# Full paper-vs-model report with the published numbers interleaved.
report:
	$(GO) run ./cmd/experiments -o report.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scenarios1d
	$(GO) run ./examples/topologysweep
	$(GO) run ./examples/cluster
	$(GO) run ./examples/homogeneous

clean:
	$(GO) clean ./...
