# Convenience targets for the islands repository. Everything is stdlib Go;
# `go build ./...` with Go >= 1.22 is the only real requirement.

GO ?= go

.PHONY: all build vet test race bench tables examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate the paper's evaluation tables on the simulated UV 2000.
tables:
	$(GO) run ./cmd/paper-tables

# Full paper-vs-model report with the published numbers interleaved.
report:
	$(GO) run ./cmd/experiments -o report.md

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scenarios1d
	$(GO) run ./examples/topologysweep
	$(GO) run ./examples/cluster
	$(GO) run ./examples/homogeneous

clean:
	$(GO) clean ./...
