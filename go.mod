module islands

go 1.22
