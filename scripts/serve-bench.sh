#!/bin/sh
# serve-bench.sh — serving-layer benchmark trajectory: run the same mixed
# workload against (a) one mpdata-serve and (b) an mpdata-router fronting two
# replicas with the same total slot count, and append both arms' summaries to
# BENCH_serve.json. The acceptance gate is cache affinity: the fleet's
# engine-cache hit rate must not fall below the single-server baseline —
# that is what hashing jobs by engine cache key buys (see docs/FLEET.md).
# Usage:
#
#   scripts/serve-bench.sh [label]
#
# JOBS/CONCURRENCY/STEPS/SLOTS override the workload (defaults 96/8/5/4).
set -eu
cd "$(dirname "$0")/.." || exit 1

label=${1:-"$(date -u +%Y-%m-%dT%H:%M:%SZ)"}
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
jobs=${JOBS:-96}
concurrency=${CONCURRENCY:-8}
steps=${STEPS:-5}
slots=${SLOTS:-4}
grids="48x32x8,64x32x8"

bindir=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$bindir"
}
trap cleanup EXIT

go build -o "$bindir/mpdata-serve" ./cmd/mpdata-serve
go build -o "$bindir/mpdata-router" ./cmd/mpdata-router
go build -o "$bindir/mpdata-load" ./cmd/mpdata-load

scrape_url() {
    _log=$1
    _pid=$2
    _prefix=$3
    _url=""
    for _ in $(seq 1 100); do
        _url=$(sed -n "s/^$_prefix: listening on \\(http:\\/\\/[^ ]*\\).*/\\1/p" "$_log" | head -n1)
        [ -n "$_url" ] && break
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "serve-bench: $_prefix died on startup:" >&2
            cat "$_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$_url" ]; then
        echo "serve-bench: $_prefix never reported its listen address" >&2
        exit 1
    fi
    echo "$_url"
}

stop_clean() {
    kill -TERM "$1"
    wait "$1" || {
        echo "serve-bench: process $1 did not drain cleanly" >&2
        exit 1
    }
}

# ------------------------------------------------- arm 1: single server --

log="$bindir/single.log"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots "$slots" >"$log" 2>&1 &
pid=$!
pids="$pid"
url=$(scrape_url "$log" "$pid" mpdata-serve)
echo "serve-bench: single-server arm at $url ($jobs jobs, $slots slots)"
# Warm-up: one sequential job per (strategy, grid) class compiles every
# engine once, so the measured run sees steady-state cache behavior in both
# arms instead of cold-compile arrival order.
"$bindir/mpdata-load" -addr "$url" -jobs 8 -concurrency 1 \
    -grids "$grids" -steps 1 -p 2 >/dev/null
"$bindir/mpdata-load" -addr "$url" -jobs "$jobs" -concurrency "$concurrency" \
    -grids "$grids" -steps "$steps" -p 2 -slo 2s \
    -json "$bindir/single.json" -label single-server
stop_clean "$pid"
pids=""

# -------------------------------------------- arm 2: router + 2 replicas --

half=$((slots / 2))
[ "$half" -lt 1 ] && half=1
r1log="$bindir/r1.log"
r2log="$bindir/r2.log"
rtlog="$bindir/rt.log"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots "$half" >"$r1log" 2>&1 &
r1=$!
pids="$r1"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots "$half" >"$r2log" 2>&1 &
r2=$!
pids="$pids $r2"
r1url=$(scrape_url "$r1log" "$r1" mpdata-serve)
r2url=$(scrape_url "$r2log" "$r2" mpdata-serve)
"$bindir/mpdata-router" -addr 127.0.0.1:0 -replicas "$r1url,$r2url" >"$rtlog" 2>&1 &
rt=$!
pids="$pids $rt"
rturl=$(scrape_url "$rtlog" "$rt" mpdata-router)
echo "serve-bench: fleet arm at $rturl over 2 replicas x $half slots"
"$bindir/mpdata-load" -addr "$rturl" -jobs 8 -concurrency 1 \
    -grids "$grids" -steps 1 -p 2 >/dev/null
"$bindir/mpdata-load" -addr "$rturl" -jobs "$jobs" -concurrency "$concurrency" \
    -grids "$grids" -steps "$steps" -p 2 -slo 2s \
    -json "$bindir/fleet.json" -label fleet-2-replicas
stop_clean "$rt"
stop_clean "$r1"
stop_clean "$r2"
pids=""

# ------------------------------------------------------------- trajectory --

base_rate=$(jq -r '.cache_hit_rate' "$bindir/single.json")
fleet_rate=$(jq -r '.cache_hit_rate' "$bindir/fleet.json")
echo "serve-bench: cache hit rate single=$base_rate fleet=$fleet_rate"
if ! awk -v f="$fleet_rate" -v b="$base_rate" 'BEGIN { exit !(f >= b - 0.02) }'; then
    echo "serve-bench: FLEET CACHE HIT RATE REGRESSED below the single-server baseline" >&2
    exit 1
fi

out=BENCH_serve.json
[ -f "$out" ] || echo '{"benchmark":"ServeFleet","runs":[]}' >"$out"
jq --arg lbl "$label" --arg commit "$commit" \
    --slurpfile single "$bindir/single.json" --slurpfile fleet "$bindir/fleet.json" \
    '.runs += [{"label": $lbl, "commit": $commit, "arms": ($single + $fleet)}]' \
    "$out" >"$out.tmp"
mv "$out.tmp" "$out"
echo "serve-bench: appended run \"$label\" to $out"
