#!/bin/sh
# serve-smoke.sh — end-to-end smoke test of the serving subsystem, in four
# phases:
#
#   1. Single server: start mpdata-serve on a random port, push one small job
#      per strategy through it with mpdata-load, assert the server-side
#      metrics report zero failures, then SIGTERM the server and require a
#      clean drain (exit 0).
#   2. Fleet: start two replicas and an mpdata-router on random ports, drive
#      mixed traffic through the router, kill -9 one replica mid-run, and
#      assert zero failed jobs in the router's /metrics (every affected job
#      rerouted and re-run), the dead replica evicted from membership, and a
#      clean SIGTERM drain of the router.
#   3. Streaming (docs/STREAMING.md): start a server with a 1 MiB default
#      stream budget, push a batch of streamed jobs whose domains exceed the
#      budget several times over (>= 4 tiles each), then kill -9 the server
#      mid-way through a long durable streamed job, restart it on the same
#      spill directory, resubmit the same stream_id, and assert the job
#      completes with zero failures from the surviving checkpoint.
#   4. Solver catalog (docs/SOLVERS.md): submit one job per catalog solver
#      through a router and assert each succeeded, with the replica's
#      per-solver metric labels accounting for every entry.
#
# Usage:
#
#   scripts/serve-smoke.sh [jobs]
#
# JOBS (argument or env) is the phase-1 job count (default 8: two rounds over
# the four strategies, so the second round must hit the schedule cache).
set -eu
cd "$(dirname "$0")/.." || exit 1

jobs=${1:-${JOBS:-8}}
fleet_jobs=${FLEET_JOBS:-16}
bindir=$(mktemp -d)
pids=""

cleanup() {
    for pid in $pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$bindir"
}
trap cleanup EXIT

go build -o "$bindir/mpdata-serve" ./cmd/mpdata-serve
go build -o "$bindir/mpdata-router" ./cmd/mpdata-router
go build -o "$bindir/mpdata-load" ./cmd/mpdata-load

# scrape_url LOG PID PREFIX: wait for "PREFIX: listening on http://HOST:PORT"
# in LOG and print the URL (both binaries log the same machine-readable line).
scrape_url() {
    _log=$1
    _pid=$2
    _prefix=$3
    _url=""
    for _ in $(seq 1 100); do
        _url=$(sed -n "s/^$_prefix: listening on \\(http:\\/\\/[^ ]*\\).*/\\1/p" "$_log" | head -n1)
        [ -n "$_url" ] && break
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "serve-smoke: $_prefix died on startup:" >&2
            cat "$_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$_url" ]; then
        echo "serve-smoke: $_prefix never reported its listen address" >&2
        cat "$_log" >&2
        exit 1
    fi
    echo "$_url"
}

# metric_value URL SERIES: print one exposition sample's value.
metric_value() {
    curl -fsS "$1/metrics" | awk -v s="$2" '$1 == s {print $2}'
}

# ---------------------------------------------------------------- phase 1 --

log="$bindir/serve.log"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$log" 2>&1 &
server_pid=$!
pids="$server_pid"
url=$(scrape_url "$log" "$server_pid" mpdata-serve)
echo "serve-smoke: server at $url (pid $server_pid), running $jobs jobs"

# One small job per strategy (round robin over all four), 4 clients.
"$bindir/mpdata-load" -addr "$url" -jobs "$jobs" -concurrency 4 \
    -grids 48x32x8 -steps 3 -p 2

# The server's own counters must agree: every submission succeeded.
failed=$(metric_value "$url" serve_jobs_failed_total)
succeeded=$(metric_value "$url" serve_jobs_succeeded_total)
if [ "$failed" != "0" ]; then
    echo "serve-smoke: server reports $failed failed jobs" >&2
    exit 1
fi
if [ "$succeeded" != "$jobs" ]; then
    echo "serve-smoke: server reports $succeeded succeeded jobs, want $jobs" >&2
    exit 1
fi

# Graceful drain: SIGTERM must exit 0 and log the clean-drain line.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
if [ "$rc" != "0" ]; then
    echo "serve-smoke: server exited $rc after SIGTERM" >&2
    cat "$log" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$log"; then
    echo "serve-smoke: no clean-drain log line" >&2
    cat "$log" >&2
    exit 1
fi
pids=""
echo "serve-smoke: phase 1 OK ($succeeded jobs, clean drain)"

# ---------------------------------------------------------------- phase 2 --

r1log="$bindir/replica1.log"
r2log="$bindir/replica2.log"
rtlog="$bindir/router.log"

"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$r1log" 2>&1 &
r1_pid=$!
pids="$r1_pid"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$r2log" 2>&1 &
r2_pid=$!
pids="$pids $r2_pid"
r1_url=$(scrape_url "$r1log" "$r1_pid" mpdata-serve)
r2_url=$(scrape_url "$r2log" "$r2_pid" mpdata-serve)

"$bindir/mpdata-router" -addr 127.0.0.1:0 -replicas "$r1_url,$r2_url" >"$rtlog" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
router_url=$(scrape_url "$rtlog" "$router_pid" mpdata-router)
echo "serve-smoke: fleet router at $router_url over $r1_url + $r2_url"

# Mixed traffic through the router: two grids x four strategies, enough steps
# that the run spans the replica kill below. Generous retry budget: after the
# kill, half the fleet's capacity is gone and submissions may back off.
"$bindir/mpdata-load" -addr "$router_url" -jobs "$fleet_jobs" -concurrency 4 \
    -grids 48x32x8,32x32x16 -steps 25 -p 2 -retries 12 &
load_pid=$!
pids="$pids $load_pid"

# Kill one replica mid-run — kill -9, no drain: queued and running jobs on it
# must be rerouted by the router, not lost.
sleep 1
kill -9 "$r1_pid" 2>/dev/null || true
echo "serve-smoke: killed replica 1 (pid $r1_pid) mid-run"

rc=0
wait "$load_pid" || rc=$?
pids="$r2_pid $router_pid"
if [ "$rc" != "0" ]; then
    echo "serve-smoke: fleet load run exited $rc after the replica kill" >&2
    cat "$rtlog" >&2
    exit 1
fi

# Router counters: every job terminal exactly once, none failed, and the
# dead replica evicted from the membership (healthy gauge down to 1).
failed=$(metric_value "$router_url" fleet_jobs_failed_total)
succeeded=$(metric_value "$router_url" fleet_jobs_succeeded_total)
if [ "$failed" != "0" ]; then
    echo "serve-smoke: router reports $failed failed jobs after the kill" >&2
    curl -fsS "$router_url/metrics" >&2
    exit 1
fi
if [ "$succeeded" != "$fleet_jobs" ]; then
    echo "serve-smoke: router reports $succeeded succeeded jobs, want $fleet_jobs" >&2
    curl -fsS "$router_url/metrics" >&2
    exit 1
fi
healthy=""
for _ in $(seq 1 50); do
    healthy=$(metric_value "$router_url" fleet_replicas_healthy)
    [ "$healthy" = "1" ] && break
    sleep 0.1
done
if [ "$healthy" != "1" ]; then
    echo "serve-smoke: fleet_replicas_healthy=$healthy, want 1 after the kill" >&2
    exit 1
fi
reroutes=$(metric_value "$router_url" fleet_reroutes_total)

# Graceful router drain: SIGTERM must exit 0 and log the clean-drain line.
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
if [ "$rc" != "0" ]; then
    echo "serve-smoke: router exited $rc after SIGTERM" >&2
    cat "$rtlog" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$rtlog"; then
    echo "serve-smoke: no clean-drain line in the router log" >&2
    cat "$rtlog" >&2
    exit 1
fi
kill -TERM "$r2_pid" 2>/dev/null || true
wait "$r2_pid" 2>/dev/null || true
pids=""
echo "serve-smoke: phase 2 OK ($succeeded jobs, $reroutes reroutes, replica kill survived, clean drain)"

# ---------------------------------------------------------------- phase 3 --

spill="$bindir/spill"
stlog="$bindir/stream.log"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 \
    -spill-dir "$spill" -stream-budget-mb 1 >"$stlog" 2>&1 &
stream_pid=$!
pids="$stream_pid"
st_url=$(scrape_url "$stlog" "$stream_pid" mpdata-serve)
echo "serve-smoke: streaming server at $st_url (spill $spill, 1 MiB budget)"

# 3a: a batch of anonymous streamed jobs. Each 128x16x16 domain needs several
# MiB resident, so the 1 MiB budget forces >= 4 tiles per sweep per job.
stream_jobs=${STREAM_JOBS:-4}
"$bindir/mpdata-load" -addr "$st_url" -jobs "$stream_jobs" -concurrency 2 \
    -grids 128x16x16 -steps 3 -p 1 -strategies original \
    -streamed -budget-mb 1

failed=$(metric_value "$st_url" serve_jobs_failed_total)
sjobs=$(metric_value "$st_url" serve_stream_jobs_total)
stiles=$(metric_value "$st_url" serve_stream_tiles_total)
if [ "$failed" != "0" ]; then
    echo "serve-smoke: streaming server reports $failed failed jobs" >&2
    exit 1
fi
if [ "$sjobs" != "$stream_jobs" ]; then
    echo "serve-smoke: serve_stream_jobs_total=$sjobs, want $stream_jobs" >&2
    exit 1
fi
# >= 4 tiles x >= 1 sweep per job.
if [ "$(awk -v t="$stiles" -v j="$stream_jobs" 'BEGIN{print (t+0 >= 4*j) ? 1 : 0}')" != "1" ]; then
    echo "serve-smoke: serve_stream_tiles_total=$stiles, want >= $((4 * stream_jobs))" >&2
    exit 1
fi
# Anonymous stores are removed when their engine retires; only the spill root
# (and any durable stream-* stores) may remain.
leftovers=$(find "$spill" -maxdepth 1 -name 'job-*' 2>/dev/null | wc -l)
if [ "$leftovers" != "0" ]; then
    echo "serve-smoke: $leftovers anonymous tile stores leaked in $spill" >&2
    exit 1
fi
echo "serve-smoke: phase 3a OK ($sjobs streamed jobs, $stiles tile residencies)"

# 3b: kill -9 the server mid-way through a long durable streamed job, then
# restart on the same spill directory and resubmit the same stream_id. The
# checkpointed store must survive the crash and the rerun must complete.
"$bindir/mpdata-load" -addr "$st_url" -jobs 1 -concurrency 1 \
    -grids 256x16x16 -steps 30 -p 1 -strategies original \
    -streamed -budget-mb 1 -stream-id smoke >"$bindir/stream-load1.log" 2>&1 &
load_pid=$!
pids="$pids $load_pid"

# Wait for tile progress well past the 3a baseline — usually a whole sweep —
# then pull the plug.
advanced=""
for _ in $(seq 1 200); do
    now=$(metric_value "$st_url" serve_stream_tiles_total 2>/dev/null || echo "$stiles")
    if [ "$(awk -v a="$now" -v b="$stiles" 'BEGIN{print (a+0 > b+26) ? 1 : 0}')" = "1" ]; then
        advanced=1
        break
    fi
    sleep 0.05
done
if [ -z "$advanced" ]; then
    echo "serve-smoke: durable streamed job never advanced past $stiles tiles" >&2
    cat "$bindir/stream-load1.log" >&2
    exit 1
fi
kill -9 "$stream_pid" 2>/dev/null || true
wait "$load_pid" 2>/dev/null || true
pids=""
echo "serve-smoke: killed streaming server (pid $stream_pid) mid-job"

if [ ! -f "$spill/stream-smoke-0/checkpoint.json" ]; then
    echo "serve-smoke: durable store $spill/stream-smoke-0 lost its checkpoint" >&2
    ls -la "$spill" >&2 || true
    exit 1
fi

"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 \
    -spill-dir "$spill" -stream-budget-mb 1 >"$stlog" 2>&1 &
stream_pid=$!
pids="$stream_pid"
st_url=$(scrape_url "$stlog" "$stream_pid" mpdata-serve)

# Same spec + stream_id: the restarted server must adopt the checkpoint and
# finish the job (exit 0 = zero failed).
"$bindir/mpdata-load" -addr "$st_url" -jobs 1 -concurrency 1 \
    -grids 256x16x16 -steps 30 -p 1 -strategies original \
    -streamed -budget-mb 1 -stream-id smoke

failed=$(metric_value "$st_url" serve_jobs_failed_total)
resumed=$(metric_value "$st_url" serve_stream_resumed_total)
if [ "$failed" != "0" ]; then
    echo "serve-smoke: restarted streaming server reports $failed failed jobs" >&2
    exit 1
fi

kill -TERM "$stream_pid"
rc=0
wait "$stream_pid" || rc=$?
if [ "$rc" != "0" ]; then
    echo "serve-smoke: streaming server exited $rc after SIGTERM" >&2
    cat "$stlog" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$stlog"; then
    echo "serve-smoke: no clean-drain line in the streaming server log" >&2
    cat "$stlog" >&2
    exit 1
fi
pids=""
echo "serve-smoke: phase 3 OK (crash survived, resumed_total=$resumed, clean drain)"

# ---------------------------------------------------------------- phase 4 --
# Solver catalog: one job per catalog entry through the router. Every solver
# must serve end-to-end — solver-aware cache keys and routing hash — and the
# replica's per-solver metric labels must account for each of them.

go build -o "$bindir/stencil-info" ./cmd/stencil-info
catalog=$("$bindir/stencil-info" -solvers | tail -n +2 | awk '{print $1}')

# Solvers that pack components along k need their own grid (docs/SOLVERS.md);
# everything else runs the shared phase-1 grid.
solver_grid() {
    case $1 in
        lbm)  echo 48x32x9 ;;
        swe)  echo 48x48x3 ;;
        wave) echo 48x48x2 ;;
        life) echo 48x48x1 ;;
        *)    echo 48x32x8 ;;
    esac
}

s4log="$bindir/solver-replica.log"
s4rtlog="$bindir/solver-router.log"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$s4log" 2>&1 &
s4_pid=$!
pids="$s4_pid"
s4_url=$(scrape_url "$s4log" "$s4_pid" mpdata-serve)
"$bindir/mpdata-router" -addr 127.0.0.1:0 -replicas "$s4_url" >"$s4rtlog" 2>&1 &
s4rt_pid=$!
pids="$pids $s4rt_pid"
s4rt_url=$(scrape_url "$s4rtlog" "$s4rt_pid" mpdata-router)
echo "serve-smoke: solver-catalog router at $s4rt_url over $s4_url"

solver_jobs=0
for sv in $catalog; do
    "$bindir/mpdata-load" -addr "$s4rt_url" -jobs 1 -concurrency 1 \
        -grids "$(solver_grid "$sv")" -steps 3 -p 2 -strategies islands \
        -solvers "$sv"
    solver_jobs=$((solver_jobs + 1))
done
if [ "$solver_jobs" -lt 5 ]; then
    echo "serve-smoke: catalog listed only $solver_jobs solvers, want >= 5" >&2
    exit 1
fi

failed=$(metric_value "$s4rt_url" fleet_jobs_failed_total)
succeeded=$(metric_value "$s4rt_url" fleet_jobs_succeeded_total)
if [ "$failed" != "0" ]; then
    echo "serve-smoke: solver-catalog router reports $failed failed jobs" >&2
    exit 1
fi
if [ "$succeeded" != "$solver_jobs" ]; then
    echo "serve-smoke: router reports $succeeded succeeded jobs, want $solver_jobs" >&2
    exit 1
fi
# Per-solver labels on the replica: exactly one succeeded job per entry.
for sv in $catalog; do
    v=$(curl -fsS "$s4_url/metrics" |
        awk -v s="serve_jobs_succeeded_total{solver=\"$sv\"}" '$1 == s {print $2}')
    if [ "$v" != "1" ]; then
        echo "serve-smoke: serve_jobs_succeeded_total{solver=\"$sv\"}=$v, want 1" >&2
        curl -fsS "$s4_url/metrics" | grep '^serve_jobs' >&2 || true
        exit 1
    fi
done

kill -TERM "$s4rt_pid"
rc=0
wait "$s4rt_pid" || rc=$?
if [ "$rc" != "0" ]; then
    echo "serve-smoke: solver-catalog router exited $rc after SIGTERM" >&2
    cat "$s4rtlog" >&2
    exit 1
fi
kill -TERM "$s4_pid" 2>/dev/null || true
wait "$s4_pid" 2>/dev/null || true
pids=""
echo "serve-smoke: phase 4 OK ($solver_jobs catalog solvers served through the router)"
