#!/bin/sh
# serve-smoke.sh — end-to-end smoke test of the serving subsystem, in two
# phases:
#
#   1. Single server: start mpdata-serve on a random port, push one small job
#      per strategy through it with mpdata-load, assert the server-side
#      metrics report zero failures, then SIGTERM the server and require a
#      clean drain (exit 0).
#   2. Fleet: start two replicas and an mpdata-router on random ports, drive
#      mixed traffic through the router, kill -9 one replica mid-run, and
#      assert zero failed jobs in the router's /metrics (every affected job
#      rerouted and re-run), the dead replica evicted from membership, and a
#      clean SIGTERM drain of the router.
#
# Usage:
#
#   scripts/serve-smoke.sh [jobs]
#
# JOBS (argument or env) is the phase-1 job count (default 8: two rounds over
# the four strategies, so the second round must hit the schedule cache).
set -eu
cd "$(dirname "$0")/.." || exit 1

jobs=${1:-${JOBS:-8}}
fleet_jobs=${FLEET_JOBS:-16}
bindir=$(mktemp -d)
pids=""

cleanup() {
    for pid in $pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$bindir"
}
trap cleanup EXIT

go build -o "$bindir/mpdata-serve" ./cmd/mpdata-serve
go build -o "$bindir/mpdata-router" ./cmd/mpdata-router
go build -o "$bindir/mpdata-load" ./cmd/mpdata-load

# scrape_url LOG PID PREFIX: wait for "PREFIX: listening on http://HOST:PORT"
# in LOG and print the URL (both binaries log the same machine-readable line).
scrape_url() {
    _log=$1
    _pid=$2
    _prefix=$3
    _url=""
    for _ in $(seq 1 100); do
        _url=$(sed -n "s/^$_prefix: listening on \\(http:\\/\\/[^ ]*\\).*/\\1/p" "$_log" | head -n1)
        [ -n "$_url" ] && break
        if ! kill -0 "$_pid" 2>/dev/null; then
            echo "serve-smoke: $_prefix died on startup:" >&2
            cat "$_log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$_url" ]; then
        echo "serve-smoke: $_prefix never reported its listen address" >&2
        cat "$_log" >&2
        exit 1
    fi
    echo "$_url"
}

# metric_value URL SERIES: print one exposition sample's value.
metric_value() {
    curl -fsS "$1/metrics" | awk -v s="$2" '$1 == s {print $2}'
}

# ---------------------------------------------------------------- phase 1 --

log="$bindir/serve.log"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$log" 2>&1 &
server_pid=$!
pids="$server_pid"
url=$(scrape_url "$log" "$server_pid" mpdata-serve)
echo "serve-smoke: server at $url (pid $server_pid), running $jobs jobs"

# One small job per strategy (round robin over all four), 4 clients.
"$bindir/mpdata-load" -addr "$url" -jobs "$jobs" -concurrency 4 \
    -grids 48x32x8 -steps 3 -p 2

# The server's own counters must agree: every submission succeeded.
failed=$(metric_value "$url" serve_jobs_failed_total)
succeeded=$(metric_value "$url" serve_jobs_succeeded_total)
if [ "$failed" != "0" ]; then
    echo "serve-smoke: server reports $failed failed jobs" >&2
    exit 1
fi
if [ "$succeeded" != "$jobs" ]; then
    echo "serve-smoke: server reports $succeeded succeeded jobs, want $jobs" >&2
    exit 1
fi

# Graceful drain: SIGTERM must exit 0 and log the clean-drain line.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
if [ "$rc" != "0" ]; then
    echo "serve-smoke: server exited $rc after SIGTERM" >&2
    cat "$log" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$log"; then
    echo "serve-smoke: no clean-drain log line" >&2
    cat "$log" >&2
    exit 1
fi
pids=""
echo "serve-smoke: phase 1 OK ($succeeded jobs, clean drain)"

# ---------------------------------------------------------------- phase 2 --

r1log="$bindir/replica1.log"
r2log="$bindir/replica2.log"
rtlog="$bindir/router.log"

"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$r1log" 2>&1 &
r1_pid=$!
pids="$r1_pid"
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$r2log" 2>&1 &
r2_pid=$!
pids="$pids $r2_pid"
r1_url=$(scrape_url "$r1log" "$r1_pid" mpdata-serve)
r2_url=$(scrape_url "$r2log" "$r2_pid" mpdata-serve)

"$bindir/mpdata-router" -addr 127.0.0.1:0 -replicas "$r1_url,$r2_url" >"$rtlog" 2>&1 &
router_pid=$!
pids="$pids $router_pid"
router_url=$(scrape_url "$rtlog" "$router_pid" mpdata-router)
echo "serve-smoke: fleet router at $router_url over $r1_url + $r2_url"

# Mixed traffic through the router: two grids x four strategies, enough steps
# that the run spans the replica kill below. Generous retry budget: after the
# kill, half the fleet's capacity is gone and submissions may back off.
"$bindir/mpdata-load" -addr "$router_url" -jobs "$fleet_jobs" -concurrency 4 \
    -grids 48x32x8,32x32x16 -steps 25 -p 2 -retries 12 &
load_pid=$!
pids="$pids $load_pid"

# Kill one replica mid-run — kill -9, no drain: queued and running jobs on it
# must be rerouted by the router, not lost.
sleep 1
kill -9 "$r1_pid" 2>/dev/null || true
echo "serve-smoke: killed replica 1 (pid $r1_pid) mid-run"

rc=0
wait "$load_pid" || rc=$?
pids="$r2_pid $router_pid"
if [ "$rc" != "0" ]; then
    echo "serve-smoke: fleet load run exited $rc after the replica kill" >&2
    cat "$rtlog" >&2
    exit 1
fi

# Router counters: every job terminal exactly once, none failed, and the
# dead replica evicted from the membership (healthy gauge down to 1).
failed=$(metric_value "$router_url" fleet_jobs_failed_total)
succeeded=$(metric_value "$router_url" fleet_jobs_succeeded_total)
if [ "$failed" != "0" ]; then
    echo "serve-smoke: router reports $failed failed jobs after the kill" >&2
    curl -fsS "$router_url/metrics" >&2
    exit 1
fi
if [ "$succeeded" != "$fleet_jobs" ]; then
    echo "serve-smoke: router reports $succeeded succeeded jobs, want $fleet_jobs" >&2
    curl -fsS "$router_url/metrics" >&2
    exit 1
fi
healthy=""
for _ in $(seq 1 50); do
    healthy=$(metric_value "$router_url" fleet_replicas_healthy)
    [ "$healthy" = "1" ] && break
    sleep 0.1
done
if [ "$healthy" != "1" ]; then
    echo "serve-smoke: fleet_replicas_healthy=$healthy, want 1 after the kill" >&2
    exit 1
fi
reroutes=$(metric_value "$router_url" fleet_reroutes_total)

# Graceful router drain: SIGTERM must exit 0 and log the clean-drain line.
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
if [ "$rc" != "0" ]; then
    echo "serve-smoke: router exited $rc after SIGTERM" >&2
    cat "$rtlog" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$rtlog"; then
    echo "serve-smoke: no clean-drain line in the router log" >&2
    cat "$rtlog" >&2
    exit 1
fi
kill -TERM "$r2_pid" 2>/dev/null || true
wait "$r2_pid" 2>/dev/null || true
pids=""
echo "serve-smoke: phase 2 OK ($succeeded jobs, $reroutes reroutes, replica kill survived, clean drain)"
