#!/bin/sh
# serve-smoke.sh — end-to-end smoke test of the serving subsystem: start
# mpdata-serve on a random port, push one small job per strategy through it
# with mpdata-load, assert the server-side metrics report zero failures, then
# SIGTERM the server and require a clean drain (exit 0). Usage:
#
#   scripts/serve-smoke.sh [jobs]
#
# JOBS (argument or env) is the total job count (default 8: two rounds over
# the four strategies, so the second round must hit the schedule cache).
set -eu
cd "$(dirname "$0")/.." || exit 1

jobs=${1:-${JOBS:-8}}
bindir=$(mktemp -d)
log="$bindir/serve.log"
server_pid=""

cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$bindir"
}
trap cleanup EXIT

go build -o "$bindir/mpdata-serve" ./cmd/mpdata-serve
go build -o "$bindir/mpdata-load" ./cmd/mpdata-load

# Random port: the server prints "listening on http://HOST:PORT (...)".
"$bindir/mpdata-serve" -addr 127.0.0.1:0 -slots 2 >"$log" 2>&1 &
server_pid=$!

url=""
for _ in $(seq 1 50); do
    url=$(sed -n 's/^mpdata-serve: listening on \(http:\/\/[^ ]*\).*/\1/p' "$log" | head -n1)
    [ -n "$url" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve-smoke: server died on startup:" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$url" ]; then
    echo "serve-smoke: server never reported its listen address" >&2
    cat "$log" >&2
    exit 1
fi
echo "serve-smoke: server at $url (pid $server_pid), running $jobs jobs"

# One small job per strategy (round robin over all four), 4 clients.
"$bindir/mpdata-load" -addr "$url" -jobs "$jobs" -concurrency 4 \
    -grid 48x32x8 -steps 3 -p 2

# The server's own counters must agree: every submission succeeded.
metrics=$(curl -fsS "$url/metrics")
failed=$(echo "$metrics" | awk '$1 == "serve_jobs_failed_total" {print $2}')
succeeded=$(echo "$metrics" | awk '$1 == "serve_jobs_succeeded_total" {print $2}')
if [ "$failed" != "0" ]; then
    echo "serve-smoke: server reports $failed failed jobs" >&2
    exit 1
fi
if [ "$succeeded" != "$jobs" ]; then
    echo "serve-smoke: server reports $succeeded succeeded jobs, want $jobs" >&2
    exit 1
fi

# Graceful drain: SIGTERM must exit 0 and log the clean-drain line.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
if [ "$rc" != "0" ]; then
    echo "serve-smoke: server exited $rc after SIGTERM" >&2
    cat "$log" >&2
    exit 1
fi
if ! grep -q "drained cleanly" "$log"; then
    echo "serve-smoke: no clean-drain log line" >&2
    cat "$log" >&2
    exit 1
fi
server_pid=""
echo "serve-smoke: OK ($succeeded jobs, clean drain)"
