#!/bin/sh
# bench.sh — run the compute benchmarks and append the results to
# BENCH_compute.json (the repository's performance trajectory; see
# docs/PERFORMANCE.md). The sweep includes the temporal-blocking ablation
# (BenchmarkCompute{Islands,CoreIslands}K{1,2,4,8}), whose per-arm
# "modeled-speedup-x" metric records the paper machine's predicted payoff
# of k-step blocking next to the measured host numbers, and the out-of-core
# streaming arms (BenchmarkStream{Resident,Tiled,TiledNoPrefetch}; see
# docs/STREAMING.md), where the tiled-with-prefetch arm beating the serial
# ablation is the double-buffered pipeline's reason to exist. The Stream
# arms are excluded from the CI allocs/op smoke gate by name — tile
# streaming allocates by design. Usage:
#
#   scripts/bench.sh [label]
#
# BENCHTIME overrides the per-benchmark iteration count (default 30x, enough
# to amortize warm-up on the small benchmark grid).
set -eu
cd "$(dirname "$0")/.." || exit 1

label=${1:-"$(date -u +%Y-%m-%dT%H:%M:%SZ)"}
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkCompute|^BenchmarkStream' -benchmem -benchtime "${BENCHTIME:-30x}" . | tee "$tmp"
go run ./cmd/benchjson -match Benchmark -o BENCH_compute.json \
	-label "$label" -commit "$commit" <"$tmp"
